/* Flat pair-sum kernel for the exact O(n²) estimator.

   The OCaml side stages the design into flat buffers (cells sorted by
   (type, original index)) and calls [rgleak_pair_sum] once per row
   tile.  For every ordered pair (a, b) with lo <= a < hi, a < b < n,
   the kernel evaluates the binned covariance table of the two cell
   types at their Euclidean distance by linear interpolation and
   accumulates the values into a fixed set of EIGHT lane accumulators.

   Determinism contract (mirrored bit-for-bit by Pair_kernel.sum_ocaml
   and relied on by the cross-ISA and cross-jobs equality tests):

   - Per (row, type-segment), pairs are consumed in blocks of 8; the
     j-th pair of a block goes to lane j.  The < 8 trailing pairs of a
     segment go to a second bank of 8 remainder lanes, again j-th pair
     to lane j.
   - The call's result is sum_{j=0..7} (lane[j] + rem[j]), summed in
     increasing j, each parenthesized exactly like that.
   - Per-pair arithmetic is plain IEEE double +, -, *, sqrt (correctly
     rounded everywhere), with FMA contraction disabled — so the SSE,
     AVX2 and AVX-512 code paths produce identical bits and only the
     instruction count changes.

   Everything the kernel reads lives in caller-owned bigarrays; the
   kernel allocates nothing and never touches the OCaml heap, so calls
   need no GC cooperation beyond returning one boxed float. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/bigarray.h>
#include <caml/fail.h>
#include <math.h>
#include <stdint.h>
#include <string.h>

#define RGLEAK_LANES 8

#define RGLEAK_ISA_AUTO 0
#define RGLEAK_ISA_SCALAR 1
#define RGLEAK_ISA_AVX2 2
#define RGLEAK_ISA_AVX512 3

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define RGLEAK_X86_DISPATCH 1
#include <immintrin.h>
#else
#define RGLEAK_X86_DISPATCH 0
#endif

/* ---------- scalar reference (every platform) ---------- */

static double pair_sum_scalar(intnat n, const double *xs, const double *ys,
                              const intnat *ty, const intnat *seg,
                              const intnat *base, const double *cov,
                              intnat nu, double inv_dstep, intnat kmax,
                              intnat lo, intnat hi)
{
  double acc[RGLEAK_LANES];
  double rem[RGLEAK_LANES];
  intnat a, t, j;
  memset(acc, 0, sizeof acc);
  memset(rem, 0, sizeof rem);
  (void) n;
  for (a = lo; a < hi; a++) {
    double xa = xs[a], ya = ys[a];
    const intnat *rowbase = base + ty[a] * nu;
    for (t = 0; t < nu; t++) {
      intnat b = seg[t] > a + 1 ? seg[t] : a + 1;
      intnat e = seg[t + 1];
      const double *tbl = cov + rowbase[t];
      for (; b + RGLEAK_LANES <= e; b += RGLEAK_LANES) {
        for (j = 0; j < RGLEAK_LANES; j++) {
          double dx = xs[b + j] - xa, dy = ys[b + j] - ya;
          double d = sqrt(dx * dx + dy * dy);
          double pos = d * inv_dstep;
          intnat k = (intnat) pos;
          k = k < 0 ? 0 : (k > kmax ? kmax : k);
          {
            double t0 = tbl[k], t1 = tbl[k + 1];
            acc[j] += t0 + (pos - (double) k) * (t1 - t0);
          }
        }
      }
      for (j = 0; b < e; b++, j++) {
        double dx = xs[b] - xa, dy = ys[b] - ya;
        double d = sqrt(dx * dx + dy * dy);
        double pos = d * inv_dstep;
        intnat k = (intnat) pos;
        k = k < 0 ? 0 : (k > kmax ? kmax : k);
        {
          double t0 = tbl[k], t1 = tbl[k + 1];
          rem[j] += t0 + (pos - (double) k) * (t1 - t0);
        }
      }
    }
  }
  {
    double s = 0.0;
    for (j = 0; j < RGLEAK_LANES; j++)
      s += acc[j] + rem[j];
    return s;
  }
}

#if RGLEAK_X86_DISPATCH

/* ---------- AVX2: 4-wide halves of the same 8-lane contract ---------- */

__attribute__((target("avx2")))
static double pair_sum_avx2(intnat n, const double *xs, const double *ys,
                            const intnat *ty, const intnat *seg,
                            const intnat *base, const double *cov,
                            intnat nu, double inv_dstep, intnat kmax,
                            intnat lo, intnat hi)
{
  /* lanes 0-3 / 4-7 of the scalar contract */
  __m256d accl = _mm256_setzero_pd(), acch = _mm256_setzero_pd();
  __m256d vinv = _mm256_set1_pd(inv_dstep);
  __m128i vkmax = _mm_set1_epi32((int) kmax);
  __m128i vzero = _mm_setzero_si128();
  double rem[RGLEAK_LANES];
  intnat a, t, j;
  memset(rem, 0, sizeof rem);
  (void) n;
  for (a = lo; a < hi; a++) {
    double xa = xs[a], ya = ys[a];
    const intnat *rowbase = base + ty[a] * nu;
    __m256d vxa = _mm256_set1_pd(xa), vya = _mm256_set1_pd(ya);
    for (t = 0; t < nu; t++) {
      intnat b = seg[t] > a + 1 ? seg[t] : a + 1;
      intnat e = seg[t + 1];
      const double *tbl = cov + rowbase[t];
#define RGLEAK_AVX2_BODY(ACC, BB)                                          \
      {                                                                    \
        __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(xs + (BB)), vxa);       \
        __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(ys + (BB)), vya);       \
        __m256d d = _mm256_sqrt_pd(                                        \
            _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)));  \
        __m256d pos = _mm256_mul_pd(d, vinv);                              \
        __m128i k = _mm256_cvttpd_epi32(pos);                              \
        k = _mm_max_epi32(_mm_min_epi32(k, vkmax), vzero);                 \
        {                                                                  \
          __m256d t0 = _mm256_i32gather_pd(tbl, k, 8);                     \
          __m256d t1 = _mm256_i32gather_pd(                                \
              tbl, _mm_add_epi32(k, _mm_set1_epi32(1)), 8);                \
          __m256d frac = _mm256_sub_pd(pos, _mm256_cvtepi32_pd(k));        \
          ACC = _mm256_add_pd(                                             \
              ACC, _mm256_add_pd(                                          \
                       t0, _mm256_mul_pd(frac, _mm256_sub_pd(t1, t0))));   \
        }                                                                  \
      }
      for (; b + RGLEAK_LANES <= e; b += RGLEAK_LANES) {
        RGLEAK_AVX2_BODY(accl, b)
        RGLEAK_AVX2_BODY(acch, b + 4)
      }
#undef RGLEAK_AVX2_BODY
      for (j = 0; b < e; b++, j++) {
        double dx = xs[b] - xa, dy = ys[b] - ya;
        double d = sqrt(dx * dx + dy * dy);
        double pos = d * inv_dstep;
        intnat k = (intnat) pos;
        k = k < 0 ? 0 : (k > kmax ? kmax : k);
        {
          double t0 = tbl[k], t1 = tbl[k + 1];
          rem[j] += t0 + (pos - (double) k) * (t1 - t0);
        }
      }
    }
  }
  {
    double l0[4], l1[4], s = 0.0;
    _mm256_storeu_pd(l0, accl);
    _mm256_storeu_pd(l1, acch);
    for (j = 0; j < 4; j++)
      s += l0[j] + rem[j];
    for (j = 0; j < 4; j++)
      s += l1[j] + rem[4 + j];
    return s;
  }
}

/* ---------- AVX-512: one 8-wide block per iteration ---------- */

__attribute__((target("avx2,avx512f,avx512dq,avx512vl")))
static double pair_sum_avx512(intnat n, const double *xs, const double *ys,
                              const intnat *ty, const intnat *seg,
                              const intnat *base, const double *cov,
                              intnat nu, double inv_dstep, intnat kmax,
                              intnat lo, intnat hi)
{
  __m512d vacc = _mm512_setzero_pd();
  __m512d vinv = _mm512_set1_pd(inv_dstep);
  __m256i vkmax = _mm256_set1_epi32((int) kmax);
  __m256i vzero = _mm256_setzero_si256();
  double rem[RGLEAK_LANES];
  intnat a, t, j;
  memset(rem, 0, sizeof rem);
  (void) n;
  for (a = lo; a < hi; a++) {
    double xa = xs[a], ya = ys[a];
    const intnat *rowbase = base + ty[a] * nu;
    __m512d vxa = _mm512_set1_pd(xa), vya = _mm512_set1_pd(ya);
    for (t = 0; t < nu; t++) {
      intnat b = seg[t] > a + 1 ? seg[t] : a + 1;
      intnat e = seg[t + 1];
      const double *tbl = cov + rowbase[t];
      for (; b + RGLEAK_LANES <= e; b += RGLEAK_LANES) {
        __m512d dx = _mm512_sub_pd(_mm512_loadu_pd(xs + b), vxa);
        __m512d dy = _mm512_sub_pd(_mm512_loadu_pd(ys + b), vya);
        __m512d d = _mm512_sqrt_pd(
            _mm512_add_pd(_mm512_mul_pd(dx, dx), _mm512_mul_pd(dy, dy)));
        __m512d pos = _mm512_mul_pd(d, vinv);
        __m256i k = _mm512_cvttpd_epi32(pos);
        k = _mm256_max_epi32(_mm256_min_epi32(k, vkmax), vzero);
        {
          __m512d t0 = _mm512_i32gather_pd(k, tbl, 8);
          __m512d t1 = _mm512_i32gather_pd(
              _mm256_add_epi32(k, _mm256_set1_epi32(1)), tbl, 8);
          __m512d frac = _mm512_sub_pd(pos, _mm512_cvtepi32_pd(k));
          vacc = _mm512_add_pd(
              vacc,
              _mm512_add_pd(t0, _mm512_mul_pd(frac, _mm512_sub_pd(t1, t0))));
        }
      }
      for (j = 0; b < e; b++, j++) {
        double dx = xs[b] - xa, dy = ys[b] - ya;
        double d = sqrt(dx * dx + dy * dy);
        double pos = d * inv_dstep;
        intnat k = (intnat) pos;
        k = k < 0 ? 0 : (k > kmax ? kmax : k);
        {
          double t0 = tbl[k], t1 = tbl[k + 1];
          rem[j] += t0 + (pos - (double) k) * (t1 - t0);
        }
      }
    }
  }
  {
    double lane[RGLEAK_LANES], s = 0.0;
    _mm512_storeu_pd(lane, vacc);
    for (j = 0; j < RGLEAK_LANES; j++)
      s += lane[j] + rem[j];
    return s;
  }
}

#endif /* RGLEAK_X86_DISPATCH */

/* ---------- dispatch ---------- */

static int isa_supported(int isa)
{
  switch (isa) {
  case RGLEAK_ISA_SCALAR:
    return 1;
#if RGLEAK_X86_DISPATCH
  case RGLEAK_ISA_AVX2:
    return __builtin_cpu_supports("avx2") != 0;
  case RGLEAK_ISA_AVX512:
    return __builtin_cpu_supports("avx512f")
           && __builtin_cpu_supports("avx512dq")
           && __builtin_cpu_supports("avx512vl");
#endif
  default:
    return 0;
  }
}

static int best_isa(void)
{
  /* Idempotent, so the unsynchronized cache is benign across domains. */
  static int cached = 0;
  int isa = cached;
  if (isa == 0) {
    isa = RGLEAK_ISA_SCALAR;
    if (isa_supported(RGLEAK_ISA_AVX2)) isa = RGLEAK_ISA_AVX2;
    if (isa_supported(RGLEAK_ISA_AVX512)) isa = RGLEAK_ISA_AVX512;
    cached = isa;
  }
  return isa;
}

CAMLprim value rgleak_pair_isa_supported(value visa)
{
  return Val_bool(isa_supported(Int_val(visa)));
}

CAMLprim value rgleak_pair_best_isa(value unit)
{
  (void) unit;
  return Val_int(best_isa());
}

CAMLprim value rgleak_pair_sum(value vxs, value vys, value vty, value vseg,
                               value vbase, value vcov, value vnu,
                               value vinv, value vkmax, value vlo, value vhi,
                               value visa)
{
  const double *xs = (const double *) Caml_ba_data_val(vxs);
  const double *ys = (const double *) Caml_ba_data_val(vys);
  const intnat *ty = (const intnat *) Caml_ba_data_val(vty);
  const intnat *seg = (const intnat *) Caml_ba_data_val(vseg);
  const intnat *base = (const intnat *) Caml_ba_data_val(vbase);
  const double *cov = (const double *) Caml_ba_data_val(vcov);
  intnat n = Caml_ba_array_val(vxs)->dim[0];
  intnat nu = Long_val(vnu);
  double inv_dstep = Double_val(vinv);
  intnat kmax = Long_val(vkmax);
  intnat lo = Long_val(vlo);
  intnat hi = Long_val(vhi);
  int isa = Int_val(visa);
  double s;
  if (isa == RGLEAK_ISA_AUTO) isa = best_isa();
  if (!isa_supported(isa)) isa = RGLEAK_ISA_SCALAR;
  switch (isa) {
#if RGLEAK_X86_DISPATCH
  case RGLEAK_ISA_AVX2:
    s = pair_sum_avx2(n, xs, ys, ty, seg, base, cov, nu, inv_dstep, kmax,
                      lo, hi);
    break;
  case RGLEAK_ISA_AVX512:
    s = pair_sum_avx512(n, xs, ys, ty, seg, base, cov, nu, inv_dstep, kmax,
                        lo, hi);
    break;
#endif
  default:
    s = pair_sum_scalar(n, xs, ys, ty, seg, base, cov, nu, inv_dstep, kmax,
                        lo, hi);
    break;
  }
  return caml_copy_double(s);
}

CAMLprim value rgleak_pair_sum_bc(value *argv, int argn)
{
  (void) argn;
  return rgleak_pair_sum(argv[0], argv[1], argv[2], argv[3], argv[4],
                         argv[5], argv[6], argv[7], argv[8], argv[9],
                         argv[10], argv[11]);
}

/* ---------- exact fixed-point accumulator (Xsum) ----------

   A Kulisch-style superaccumulator: the running sum is held as an
   exact fixed-point integer in base 2^20, one signed int64 per limb,
   spanning the full double range (bit positions 0 .. ~2100 of the
   2^-1074-anchored frame) plus headroom limbs for intermediate
   magnitude growth.  Each add splits the 53-bit mantissa over at most
   four limbs (carry-save, signed), so a limb grows by < 2^20 per add
   and stays inside int64 for ~2^42 adds — far beyond any pair loop
   here.  Because integer addition is associative and commutative, the
   represented value after any sequence of adds and subtracts is a
   pure function of the term multiset: retracting one row of a pair
   sum and re-adding it at a new scale leaves bits identical to a cold
   rebuild, which is the property the delta estimator's equivalence
   battery pins down.

   Extraction first normalizes (carry-propagates) the limbs into a
   canonical representation — a pure function of the exact value — and
   then rounds by summing limbs most-significant first, so the
   extracted double is deterministic across add orders, job counts and
   merge shapes.  Slot XS_LIMBS counts non-finite adds; any makes the
   extracted value NaN (caught by the Guard at the "delta" site). */

#define XS_W 20
#define XS_MASK ((uint64_t) ((1u << XS_W) - 1))
#define XS_LIMBS 110
#define XS_DIM (XS_LIMBS + 1)

static inline void xs_add1(int64_t *a, double v)
{
  union { double d; uint64_t u; } bits;
  uint64_t m;
  int e, q, r, bitpos;
  unsigned __int128 p;
  bits.d = v;
  e = (int) ((bits.u >> 52) & 0x7ff);
  m = bits.u & 0xfffffffffffffULL;
  if (e == 0x7ff) { /* NaN or infinity: poison the accumulator */
    a[XS_LIMBS] += 1;
    return;
  }
  if (e == 0) {
    if (m == 0) return; /* +-0.0 */
    bitpos = 0;         /* subnormal: m * 2^-1074 */
  } else {
    m |= 1ULL << 52;    /* normal: m * 2^(e - 1075) */
    bitpos = e - 1;
  }
  q = bitpos / XS_W;
  r = bitpos % XS_W;
  p = ((unsigned __int128) m) << r; /* <= 72 bits: four 20-bit pieces */
  if (bits.u >> 63) {
    a[q + 0] -= (int64_t) ((uint64_t) p & XS_MASK);
    a[q + 1] -= (int64_t) ((uint64_t) (p >> XS_W) & XS_MASK);
    a[q + 2] -= (int64_t) ((uint64_t) (p >> (2 * XS_W)) & XS_MASK);
    a[q + 3] -= (int64_t) ((uint64_t) (p >> (3 * XS_W)) & XS_MASK);
  } else {
    a[q + 0] += (int64_t) ((uint64_t) p & XS_MASK);
    a[q + 1] += (int64_t) ((uint64_t) (p >> XS_W) & XS_MASK);
    a[q + 2] += (int64_t) ((uint64_t) (p >> (2 * XS_W)) & XS_MASK);
    a[q + 3] += (int64_t) ((uint64_t) (p >> (3 * XS_W)) & XS_MASK);
  }
}

static void xs_carry(int64_t *t)
{
  intnat i;
  for (i = 0; i < XS_LIMBS - 1; i++) {
    int64_t c = t[i] >> XS_W; /* arithmetic shift: floor division */
    t[i] -= c << XS_W;
    t[i + 1] += c;
  }
}

static double xs_value(const int64_t *a)
{
  int64_t t[XS_LIMBS];
  intnat i, top;
  int neg = 0;
  double v;
  if (a[XS_LIMBS] != 0) return (double) NAN;
  memcpy(t, a, sizeof t);
  xs_carry(t); /* canonical: limbs in [0, 2^20), signed top limb */
  if (t[XS_LIMBS - 1] < 0) {
    neg = 1;
    for (i = 0; i < XS_LIMBS; i++) t[i] = -t[i];
    xs_carry(t);
  }
  top = XS_LIMBS - 1;
  while (top > 0 && t[top] == 0) top--;
  v = 0.0;
  for (i = top; i >= 0; i--)
    v += ldexp((double) t[i], (int) (i * XS_W) - 1074);
  return neg ? -v : v;
}

CAMLprim value rgleak_xsum_dim(value unit)
{
  (void) unit;
  return Val_int(XS_DIM);
}

CAMLprim value rgleak_xsum_add(value vacc, value vx)
{
  int64_t *a = (int64_t *) Caml_ba_data_val(vacc);
  xs_add1(a, Double_val(vx));
  return Val_unit;
}

CAMLprim value rgleak_xsum_value(value vacc)
{
  return caml_copy_double(xs_value((const int64_t *) Caml_ba_data_val(vacc)));
}

/* ---------- scaled pair accumulation into an Xsum ----------

   Same traversal and per-pair interpolation arithmetic as the summing
   kernel above, but each pair's table value is weighted by the product
   of the two cells' scale factors — (scale[a] * scale[b]) * w, exactly
   that association — and accumulated exactly.  No lane contract is
   needed: the superaccumulator makes the result independent of
   iteration order by construction.

   rgleak_pair_acc covers rows [lo, hi) (cold build / band task);
   rgleak_pair_acc_row covers every partner of one row at an explicit
   row scale [srow] (pass -old_scale then +new_scale to retarget one
   cell).  Both compute identical per-pair term doubles: the distance
   is symmetric, the type-pair table offsets are symmetric by
   construction, and IEEE multiplication commutes. */

static void pair_acc_rows(const double *xs, const double *ys,
                          const intnat *ty, const intnat *seg,
                          const intnat *base, const double *cov,
                          const double *scale, int64_t *acc,
                          intnat nu, double inv_dstep, intnat kmax,
                          intnat lo, intnat hi)
{
  intnat a, t, b;
  for (a = lo; a < hi; a++) {
    double xa = xs[a], ya = ys[a], sa = scale[a];
    const intnat *rowbase = base + ty[a] * nu;
    for (t = 0; t < nu; t++) {
      intnat e = seg[t + 1];
      const double *tbl = cov + rowbase[t];
      for (b = seg[t] > a + 1 ? seg[t] : a + 1; b < e; b++) {
        double dx = xs[b] - xa, dy = ys[b] - ya;
        double d = sqrt(dx * dx + dy * dy);
        double pos = d * inv_dstep;
        intnat k = (intnat) pos;
        k = k < 0 ? 0 : (k > kmax ? kmax : k);
        {
          double t0 = tbl[k], t1 = tbl[k + 1];
          double w = t0 + (pos - (double) k) * (t1 - t0);
          xs_add1(acc, (sa * scale[b]) * w);
        }
      }
    }
  }
}

CAMLprim value rgleak_pair_acc(value vxs, value vys, value vty, value vseg,
                               value vbase, value vcov, value vscale,
                               value vacc, value vnu, value vinv,
                               value vkmax, value vlo, value vhi)
{
  pair_acc_rows((const double *) Caml_ba_data_val(vxs),
                (const double *) Caml_ba_data_val(vys),
                (const intnat *) Caml_ba_data_val(vty),
                (const intnat *) Caml_ba_data_val(vseg),
                (const intnat *) Caml_ba_data_val(vbase),
                (const double *) Caml_ba_data_val(vcov),
                (const double *) Caml_ba_data_val(vscale),
                (int64_t *) Caml_ba_data_val(vacc),
                Long_val(vnu), Double_val(vinv), Long_val(vkmax),
                Long_val(vlo), Long_val(vhi));
  return Val_unit;
}

CAMLprim value rgleak_pair_acc_bc(value *argv, int argn)
{
  (void) argn;
  return rgleak_pair_acc(argv[0], argv[1], argv[2], argv[3], argv[4],
                         argv[5], argv[6], argv[7], argv[8], argv[9],
                         argv[10], argv[11], argv[12]);
}

CAMLprim value rgleak_pair_acc_row(value vxs, value vys, value vty,
                                   value vseg, value vbase, value vcov,
                                   value vscale, value vacc, value vnu,
                                   value vinv, value vkmax, value vrow,
                                   value vsrow)
{
  const double *xs = (const double *) Caml_ba_data_val(vxs);
  const double *ys = (const double *) Caml_ba_data_val(vys);
  const intnat *ty = (const intnat *) Caml_ba_data_val(vty);
  const intnat *seg = (const intnat *) Caml_ba_data_val(vseg);
  const intnat *base = (const intnat *) Caml_ba_data_val(vbase);
  const double *cov = (const double *) Caml_ba_data_val(vcov);
  const double *scale = (const double *) Caml_ba_data_val(vscale);
  int64_t *acc = (int64_t *) Caml_ba_data_val(vacc);
  intnat nu = Long_val(vnu);
  double inv_dstep = Double_val(vinv);
  intnat kmax = Long_val(vkmax);
  intnat c = Long_val(vrow);
  double sc = Double_val(vsrow);
  double xc = xs[c], yc = ys[c];
  const intnat *rowbase = base + ty[c] * nu;
  intnat t, b;
  for (t = 0; t < nu; t++) {
    intnat e = seg[t + 1];
    const double *tbl = cov + rowbase[t];
    for (b = seg[t]; b < e; b++) {
      double dx, dy, d, pos, w, t0, t1;
      intnat k;
      if (b == c) continue;
      dx = xs[b] - xc;
      dy = ys[b] - yc;
      d = sqrt(dx * dx + dy * dy);
      pos = d * inv_dstep;
      k = (intnat) pos;
      k = k < 0 ? 0 : (k > kmax ? kmax : k);
      t0 = tbl[k];
      t1 = tbl[k + 1];
      w = t0 + (pos - (double) k) * (t1 - t0);
      xs_add1(acc, (sc * scale[b]) * w);
    }
  }
  return Val_unit;
}

CAMLprim value rgleak_pair_acc_row_bc(value *argv, int argn)
{
  (void) argn;
  return rgleak_pair_acc_row(argv[0], argv[1], argv[2], argv[3], argv[4],
                             argv[5], argv[6], argv[7], argv[8], argv[9],
                             argv[10], argv[11], argv[12]);
}
