(** Dense float vectors (thin wrappers over [float array]). *)

type t = float array

val create : int -> t
(** Zero vector of the given length. *)

val init : int -> (int -> float) -> t
val dim : t -> int
val copy : t -> t
val dot : t -> t -> float
val norm2 : t -> float
(** Euclidean norm. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val axpy : alpha:float -> t -> t -> unit
(** [axpy ~alpha x y] performs [y <- alpha*x + y] in place. *)

val max_abs_diff : t -> t -> float
(** Infinity-norm distance, for test tolerances. *)

val linspace : float -> float -> int -> t
(** [linspace lo hi n] is [n] evenly spaced points from [lo] to [hi]
    inclusive; [n >= 2]. *)
