(** Piecewise-linear interpolation over tabulated functions.

    Used to tabulate the random-gate correlation map [F(ρ_L)] once and
    evaluate it cheaply inside the estimators. *)

type t
(** An immutable interpolation table over strictly increasing abscissae. *)

val of_points : (float * float) array -> t
(** Builds a table from (x, y) points; sorts by x and requires all x to
    be distinct. *)

val of_fun : (float -> float) -> lo:float -> hi:float -> n:int -> t
(** Tabulates [f] at [n] evenly spaced points on [\[lo, hi\]] ([n >= 2]). *)

val eval : t -> float -> float
(** Linear interpolation; clamps outside the tabulated range. *)

val domain : t -> float * float
val size : t -> int

val to_points : t -> (float * float) array
(** The tabulated (x, y) pairs in ascending x order (fresh array);
    [of_points (to_points t)] reproduces [t]. *)
