(* Legendre polynomial value and derivative at x, by upward recurrence. *)
let legendre_p_dp n x =
  let rec go k pk pk1 =
    (* pk = P_k(x), pk1 = P_{k-1}(x) *)
    if k = n then (pk, pk1)
    else begin
      let kf = float_of_int k in
      let pk2 = (((2.0 *. kf) +. 1.0) *. x *. pk -. (kf *. pk1)) /. (kf +. 1.0) in
      go (k + 1) pk2 pk
    end
  in
  let pn, pn1 = go 1 x 1.0 in
  let dp = float_of_int n *. ((x *. pn) -. pn1) /. ((x *. x) -. 1.0) in
  (pn, dp)

let compute_nodes n =
  if n < 1 then invalid_arg "Quadrature: order must be >= 1";
  if n = 1 then [| (0.0, 2.0) |]
  else
    Array.init n (fun i ->
        (* Tricomi initial guess, then Newton iterations. *)
        let guess =
          cos (Float.pi *. (float_of_int i +. 0.75) /. (float_of_int n +. 0.5))
        in
        let rec newton x iter =
          let p, dp = legendre_p_dp n x in
          let x' = x -. (p /. dp) in
          if Float.abs (x' -. x) < 1e-15 || iter > 100 then x' else newton x' (iter + 1)
        in
        let x = newton guess 0 in
        let _, dp = legendre_p_dp n x in
        let w = 2.0 /. ((1.0 -. (x *. x)) *. dp *. dp) in
        (x, w))

let table : (int, (float * float) array) Hashtbl.t = Hashtbl.create 8

let gauss_legendre_nodes n =
  match Hashtbl.find_opt table n with
  | Some nodes -> nodes
  | None ->
    let nodes = compute_nodes n in
    Hashtbl.add table n nodes;
    nodes

let gauss_legendre ?(order = 64) f ~lo ~hi =
  let nodes = gauss_legendre_nodes order in
  let half = 0.5 *. (hi -. lo) in
  let mid = 0.5 *. (hi +. lo) in
  let s = ref 0.0 in
  Array.iter (fun (x, w) -> s := !s +. (w *. f (mid +. (half *. x)))) nodes;
  half *. !s

let adaptive_simpson ?(tol = 1e-10) ?(max_depth = 40) f ~lo ~hi =
  let simpson a fa b fb fm = (b -. a) /. 6.0 *. (fa +. (4.0 *. fm) +. fb) in
  let rec go a fa b fb m fm whole eps depth =
    let lm = 0.5 *. (a +. m) and rm = 0.5 *. (m +. b) in
    let flm = f lm and frm = f rm in
    let left = simpson a fa m fm flm in
    let right = simpson m fm b fb frm in
    let delta = left +. right -. whole in
    if depth >= max_depth || Float.abs delta <= 15.0 *. eps then
      left +. right +. (delta /. 15.0)
    else
      go a fa m fm lm flm left (eps /. 2.0) (depth + 1)
      +. go m fm b fb rm frm right (eps /. 2.0) (depth + 1)
  in
  if lo = hi then 0.0
  else begin
    let fa = f lo and fb = f hi in
    let m = 0.5 *. (lo +. hi) in
    let fm = f m in
    go lo fa hi fb m fm (simpson lo fa hi fb fm) tol 0
  end

(* ---- guarded integration: GL residual check, Simpson fallback ---- *)

module Obs = Rgleak_obs.Obs

(* The residual estimate compares the full-order rule against a
   half-order one: for integrands GL handles at all, the two agree to
   far better than [rtol]; a large gap means the rule is not converging
   (sharp peak, discontinuity) and the value cannot be trusted. *)
let residual_of v check =
  let scale = Float.max (Float.max (Float.abs v) (Float.abs check)) 1e-300 in
  if Float.is_nan v || Float.is_nan check then infinity
  else Float.abs (v -. check) /. scale

let guarded_scale v check =
  Float.max (Float.max (Float.abs v) (Float.abs check)) 1e-300

let gauss_legendre_guarded ?(order = 64) ?check_order ?(rtol = 1e-6) f ~lo ~hi =
  let check_order =
    match check_order with Some c -> c | None -> Stdlib.max 2 (order / 2)
  in
  let v = gauss_legendre ~order f ~lo ~hi in
  let check = gauss_legendre ~order:check_order f ~lo ~hi in
  let forced = Guard.Fault.fire "quadrature" in
  if (not forced) && residual_of v check <= rtol then v
  else begin
    Obs.count "quadrature.fallbacks" 1;
    let tol = Float.max (rtol *. guarded_scale v check) 1e-12 in
    let s = adaptive_simpson ~tol f ~lo ~hi in
    Guard.check_finite ~site:"quadrature" ~name:"adaptive-Simpson fallback" s
  end

let gauss_legendre_2d ?(order = 64) f ~x_lo ~x_hi ~y_lo ~y_hi =
  let nodes = gauss_legendre_nodes order in
  let half_x = 0.5 *. (x_hi -. x_lo) and mid_x = 0.5 *. (x_hi +. x_lo) in
  let half_y = 0.5 *. (y_hi -. y_lo) and mid_y = 0.5 *. (y_hi +. y_lo) in
  let s = ref 0.0 in
  Array.iter
    (fun (xi, wx) ->
      let x = mid_x +. (half_x *. xi) in
      let row = ref 0.0 in
      Array.iter
        (fun (yi, wy) -> row := !row +. (wy *. f x (mid_y +. (half_y *. yi))))
        nodes;
      s := !s +. (wx *. !row))
    nodes;
  half_x *. half_y *. !s

let gauss_legendre_2d_guarded ?(order = 64) ?check_order ?(rtol = 1e-6) f
    ~x_lo ~x_hi ~y_lo ~y_hi =
  let check_order =
    match check_order with Some c -> c | None -> Stdlib.max 2 (order / 2)
  in
  let v = gauss_legendre_2d ~order f ~x_lo ~x_hi ~y_lo ~y_hi in
  let check = gauss_legendre_2d ~order:check_order f ~x_lo ~x_hi ~y_lo ~y_hi in
  let forced = Guard.Fault.fire "quadrature" in
  if (not forced) && residual_of v check <= rtol then v
  else begin
    Obs.count "quadrature.fallbacks" 1;
    (* Iterated adaptive Simpson: the outer tolerance is split between
       the two nesting levels so the overall error stays ~rtol. *)
    let tol = Float.max (rtol *. guarded_scale v check) 1e-12 in
    let inner x = adaptive_simpson ~tol:(tol /. 4.0) (f x) ~lo:y_lo ~hi:y_hi in
    let s = adaptive_simpson ~tol inner ~lo:x_lo ~hi:x_hi in
    Guard.check_finite ~site:"quadrature" ~name:"adaptive-Simpson 2-D fallback" s
  end

let trapezoid f ~lo ~hi ~n =
  if n < 1 then invalid_arg "Quadrature.trapezoid: need at least one panel";
  let h = (hi -. lo) /. float_of_int n in
  let s = ref (0.5 *. (f lo +. f hi)) in
  for i = 1 to n - 1 do
    s := !s +. f (lo +. (float_of_int i *. h))
  done;
  h *. !s

(* Gauss-Hermite nodes by Newton iteration on the orthonormal Hermite
   recurrence (Numerical Recipes "gauher" scheme, which avoids factorial
   overflow at high order). *)
let compute_hermite_nodes n =
  if n < 1 then invalid_arg "Quadrature: order must be >= 1";
  let pim4 = Float.pi ** (-0.25) in
  let nodes = Array.make n (0.0, 0.0) in
  let m = (n + 1) / 2 in
  let z = ref 0.0 in
  for i = 0 to m - 1 do
    (* initial guesses for the roots, largest first *)
    (if i = 0 then
       z :=
         sqrt (float_of_int ((2 * n) + 1))
         -. (1.85575 *. (float_of_int ((2 * n) + 1) ** (-0.16667)))
     else if i = 1 then z := !z -. (1.14 *. (float_of_int n ** 0.426) /. !z)
     else if i = 2 then z := (1.86 *. !z) -. (0.86 *. fst nodes.(0))
     else if i = 3 then z := (1.91 *. !z) -. (0.91 *. fst nodes.(1))
     else z := (2.0 *. !z) -. fst nodes.(i - 2));
    let pp = ref 0.0 in
    (try
       for _ = 1 to 100 do
         let p1 = ref pim4 and p2 = ref 0.0 in
         for j = 1 to n do
           let p3 = !p2 in
           p2 := !p1;
           let jf = float_of_int j in
           p1 :=
             (!z *. sqrt (2.0 /. jf) *. !p2)
             -. (sqrt ((jf -. 1.0) /. jf) *. p3)
         done;
         pp := sqrt (2.0 *. float_of_int n) *. !p2;
         let z1 = !z in
         z := z1 -. (!p1 /. !pp);
         if Float.abs (!z -. z1) <= 1e-15 then raise Exit
       done
     with Exit -> ());
    let w = 2.0 /. (!pp *. !pp) in
    nodes.(i) <- (!z, w);
    nodes.(n - 1 - i) <- (-. !z, w)
  done;
  nodes

let hermite_table : (int, (float * float) array) Hashtbl.t = Hashtbl.create 8

let gauss_hermite_nodes n =
  match Hashtbl.find_opt hermite_table n with
  | Some nodes -> nodes
  | None ->
    let nodes = compute_hermite_nodes n in
    Hashtbl.add hermite_table n nodes;
    nodes

let normal_expectation ?(order = 64) f ~mu ~sigma =
  let nodes = gauss_hermite_nodes order in
  let inv_sqrt_pi = 1.0 /. sqrt Float.pi in
  let s = ref 0.0 in
  Array.iter
    (fun (x, w) -> s := !s +. (w *. f (mu +. (sigma *. sqrt 2.0 *. x))))
    nodes;
  inv_sqrt_pi *. !s
