(** Special functions for Gaussian statistics. *)

val erf : float -> float
(** Error function, accurate to about 1.2e-7 (Abramowitz–Stegun 7.1.26
    refined with one Newton step against [erfc]). *)

val erfc : float -> float
(** Complementary error function, non-underflowing for large arguments. *)

val normal_cdf : float -> float
(** Standard normal cumulative distribution function. *)

val normal_pdf : float -> float
(** Standard normal density. *)

val normal_quantile : float -> float
(** Inverse standard normal CDF (Acklam's rational approximation with a
    Halley refinement step); raises [Invalid_argument] outside (0, 1). *)

val normal_sf : float -> float
(** Upper-tail probability [P(Z > x)] (survival function), computed
    through [erfc] so it keeps full relative accuracy in the far tail
    where [1. -. normal_cdf x] cancels to zero (beyond x ~ 8). *)

val normal_tail_quantile : float -> float
(** Upper-tail quantile: the [z] with [P(Z > z) = q].  Stable for tiny
    [q] (down to ~1e-300): the seed is Acklam's tail branch on [q]
    itself and the Halley refinement targets [normal_sf], so no
    [1. -. q] cancellation occurs anywhere.  Raises [Invalid_argument]
    outside (0, 1). *)

val log_sum_exp : float array -> float
(** Numerically stable [log (sum_i exp a_i)]. *)
