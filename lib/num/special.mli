(** Special functions for Gaussian statistics. *)

val erf : float -> float
(** Error function, accurate to about 1.2e-7 (Abramowitz–Stegun 7.1.26
    refined with one Newton step against [erfc]). *)

val erfc : float -> float
(** Complementary error function, non-underflowing for large arguments. *)

val normal_cdf : float -> float
(** Standard normal cumulative distribution function. *)

val normal_pdf : float -> float
(** Standard normal density. *)

val normal_quantile : float -> float
(** Inverse standard normal CDF (Acklam's rational approximation with a
    Halley refinement step); raises [Invalid_argument] outside (0, 1). *)

val log_sum_exp : float array -> float
(** Numerically stable [log (sum_i exp a_i)]. *)
