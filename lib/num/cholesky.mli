(** Cholesky factorization of symmetric positive-(semi)definite matrices,
    used to sample correlated Gaussian fields and to solve the normal
    equations of least-squares fits. *)

exception Not_positive_definite of int
(** Raised with the offending pivot index when the matrix is not
    numerically positive definite. *)

val decompose : Matrix.t -> Matrix.t
(** [decompose a] returns the lower-triangular [l] with [l * lᵀ = a].
    Raises [Not_positive_definite] if a pivot is non-positive. *)

val decompose_semidefinite : ?jitter:float -> Matrix.t -> Matrix.t
(** Like [decompose] but tolerant of semi-definite inputs (as arise from
    perfectly correlated spatial fields): non-positive pivots within
    [jitter] (default 1e-10 relative to the largest diagonal entry) give
    a zero row.  Genuinely indefinite inputs (pivots far below zero, or
    rows whose norm would exceed the original diagonal) still raise
    [Not_positive_definite] — e.g. a triangular correlation function
    evaluated on a dense 2-D grid, which is not a valid covariance. *)

type robust = {
  factor : Matrix.t;  (** lower-triangular [l] with [l lᵀ ≈ a + jitter·I] *)
  jitter : float;  (** diagonal regularization that finally succeeded *)
  attempts : int;  (** factorization attempts consumed (1 = clean) *)
}

val decompose_robust : ?max_attempts:int -> Matrix.t -> robust
(** Jitter-retry guardrail for near-PSD covariance tables: tries
    {!decompose_semidefinite} as-is first, then with escalating
    diagonal regularization [jitter·I] (1e-12, 1e-10, … 1e-2 relative
    to the largest diagonal entry, [max_attempts] rungs, default the
    full ladder).  Matrices that are indefinite only through rounding
    are repaired with a perturbation that is negligible against the
    data; genuinely indefinite inputs exhaust the ladder and raise
    {!Guard.Error} with a [Numeric] diagnostic at site ["cholesky"].
    The ["cholesky"] fault site makes any attempt fail on demand, so
    the retry path is testable without crafting ill-conditioned
    inputs. *)

val solve : Matrix.t -> Vector.t -> Vector.t
(** [solve l b] solves [l lᵀ x = b] given the factor [l]. *)

val sample : Matrix.t -> Rng.t -> Vector.t
(** [sample l rng] draws a zero-mean Gaussian vector with covariance
    [l lᵀ] (one standard normal per component, transformed by [l]). *)

val sample_into : Matrix.t -> Rng.t -> z:float array -> out:float array -> unit
(** Allocation-free {!sample}: the standard normals land in [z] and the
    transformed vector in [out] (both of length >= the factor size;
    only the first [n] entries are touched).  Bit-identical to
    {!sample} — same draw order (ascending component), same
    accumulation order — so callers can swap freely between the two.
    Raises [Invalid_argument] when a scratch array is too short. *)

val log_det : Matrix.t -> float
(** Log-determinant of [l lᵀ] given the factor [l]. *)
