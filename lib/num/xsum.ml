type t = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

external dim : unit -> int = "rgleak_xsum_dim"

external add : t -> float -> unit = "rgleak_xsum_add" [@@noalloc]

external value : t -> float = "rgleak_xsum_value"

let limbs = dim ()

let create () =
  let a = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout limbs in
  Bigarray.Array1.fill a 0L;
  a

let copy t =
  let a = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout limbs in
  Bigarray.Array1.blit t a;
  a

let merge ~into src =
  for i = 0 to limbs - 1 do
    Bigarray.Array1.unsafe_set into i
      (Int64.add
         (Bigarray.Array1.unsafe_get into i)
         (Bigarray.Array1.unsafe_get src i))
  done

let raw t = t
