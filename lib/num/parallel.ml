(* Domain-pool parallel runtime.  See the interface for the determinism
   contract: chunk/band boundaries depend only on the problem size, and
   partial results are combined in chunk order, so every reduction is
   bit-identical for any job count. *)

module Obs = Rgleak_obs.Obs

type pool = {
  size : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  has_work : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t array;
}

let max_jobs = 64
let clamp_jobs j = Stdlib.max 1 (Stdlib.min max_jobs j)

let configured_jobs = ref None

let default_jobs () =
  match !configured_jobs with
  | Some j -> j
  | None -> clamp_jobs (Domain.recommended_domain_count ())

let set_default_jobs j =
  if j < 1 then invalid_arg "Parallel.set_default_jobs: need at least one job";
  configured_jobs := Some (clamp_jobs j)

let jobs t = t.size

(* Telemetry: per-worker busy/idle wall time keyed by the recording
   domain's telemetry slot.  All of it is behind Obs.enabled, so the
   disabled pool pays one atomic load per loop iteration. *)

let ns_to_s ns = Int64.to_float ns /. 1e9

let record_idle t0 =
  if t0 <> 0L then
    Obs.gauge_add
      (Printf.sprintf "pool.worker.%d.idle_s" (Obs.domain_slot ()))
      (ns_to_s (Int64.sub (Obs.now_ns ()) t0))

let worker pool =
  let rec loop () =
    Mutex.lock pool.mutex;
    let t_wait =
      if Queue.is_empty pool.queue && not pool.closed && Obs.enabled () then
        Obs.now_ns ()
      else 0L
    in
    while Queue.is_empty pool.queue && not pool.closed do
      Condition.wait pool.has_work pool.mutex
    done;
    if Queue.is_empty pool.queue then begin
      Mutex.unlock pool.mutex;
      record_idle t_wait
    end
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      record_idle t_wait;
      task ();
      loop ()
    end
  in
  loop ()

let create ?jobs () =
  let size =
    match jobs with
    | None -> default_jobs ()
    | Some j ->
      if j < 1 then invalid_arg "Parallel.create: need at least one job";
      clamp_jobs j
  in
  let pool =
    {
      size;
      queue = Queue.create ();
      mutex = Mutex.create ();
      has_work = Condition.create ();
      closed = false;
      workers = [||];
    }
  in
  pool.workers <- Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  let first = not pool.closed in
  if first then begin
    pool.closed <- true;
    Condition.broadcast pool.has_work
  end;
  Mutex.unlock pool.mutex;
  if first then Array.iter Domain.join pool.workers

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Shared pool: built on first use, rebuilt if --jobs changed the
   configured size, torn down at exit so no domain outlives main. *)
let shared = ref None
let shared_mutex = Mutex.create ()
let exit_hook_installed = ref false

let default () =
  Mutex.lock shared_mutex;
  let pool =
    match !shared with
    | Some p when p.size = default_jobs () && not p.closed -> p
    | previous ->
      (match previous with Some p -> shutdown p | None -> ());
      let p = create ~jobs:(default_jobs ()) () in
      shared := Some p;
      if not !exit_hook_installed then begin
        exit_hook_installed := true;
        at_exit (fun () ->
            match !shared with
            | Some p -> shutdown p
            | None -> ())
      end;
      p
  in
  Mutex.unlock shared_mutex;
  pool

let using ?jobs f =
  match jobs with
  | None -> f (default ())
  | Some j -> with_pool ~jobs:j f

(* Wraps every task in a span (attached under the submitting domain's
   open span, so pool work nests in the trace tree) and accounts its
   wall time to the executing worker's busy gauge.  The task count is a
   work counter: tasks depend only on the problem decomposition, never
   on the pool size, so it is bit-identical across job counts. *)
let instrument_tasks label fs =
  if not (Obs.enabled ()) then fs
  else begin
    let parent = Obs.current_path () in
    Array.map
      (fun f () ->
        Obs.count "pool.tasks" 1;
        let t0 = Obs.now_ns () in
        Fun.protect
          ~finally:(fun () ->
            Obs.gauge_add
              (Printf.sprintf "pool.worker.%d.busy_s" (Obs.domain_slot ()))
              (ns_to_s (Int64.sub (Obs.now_ns ()) t0)))
          (fun () -> Obs.span_under ~parent label f))
      fs
  end

let run_thunks ?(label = "task") pool fs =
  let n = Array.length fs in
  if n = 0 then [||]
  else begin
    let fs = instrument_tasks label fs in
    let results = Array.make n None in
    let error = Atomic.make None in
    let remaining = Atomic.make n in
    let done_mutex = Mutex.create () in
    let all_done = Condition.create () in
    let task i () =
      (* The fault probe sits inside the capture scope: an injected
         fault is recorded like any task exception and re-raised on the
         submitting domain once every task has drained, so a poisoned
         run fails with a typed diagnostic instead of hanging. *)
      (try
         if Guard.Fault.fire "parallel" then
           Guard.numeric ~site:"parallel"
             (Printf.sprintf "injected fault in pool task %d" i);
         results.(i) <- Some (fs.(i) ())
       with e -> ignore (Atomic.compare_and_set error None (Some e)));
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock done_mutex;
        Condition.signal all_done;
        Mutex.unlock done_mutex
      end
    in
    if pool.size = 1 || n = 1 then
      for i = 0 to n - 1 do
        task i ()
      done
    else begin
      Mutex.lock pool.mutex;
      for i = 0 to n - 1 do
        Queue.push (task i) pool.queue
      done;
      let depth = Queue.length pool.queue in
      Condition.broadcast pool.has_work;
      Mutex.unlock pool.mutex;
      Obs.gauge_max "pool.queue_max" (float_of_int depth);
      (* Timeline samples: depth at submit, zero once this batch has
         fully drained — renders as a sawtooth counter track. *)
      Obs.track "pool.queue_depth" (float_of_int depth);
      (* The submitting domain drains the queue alongside the workers. *)
      let rec help () =
        Mutex.lock pool.mutex;
        if Queue.is_empty pool.queue then Mutex.unlock pool.mutex
        else begin
          let task = Queue.pop pool.queue in
          Mutex.unlock pool.mutex;
          task ();
          help ()
        end
      in
      help ();
      let t_wait =
        if Atomic.get remaining > 0 && Obs.enabled () then Obs.now_ns () else 0L
      in
      Mutex.lock done_mutex;
      while Atomic.get remaining > 0 do
        Condition.wait all_done done_mutex
      done;
      Mutex.unlock done_mutex;
      record_idle t_wait;
      Obs.track "pool.queue_depth" 0.0
    end;
    (match Atomic.get error with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_array ?label pool f xs =
  run_thunks ?label pool (Array.map (fun x () -> f x) xs)

let default_chunks = 64

let parallel_for_reduce ?(chunks = default_chunks) ?(label = "chunk") pool ~n
    ~init ~body ~combine =
  if n < 0 then invalid_arg "Parallel.parallel_for_reduce: negative range";
  if chunks < 1 then invalid_arg "Parallel.parallel_for_reduce: need >= 1 chunk";
  if n = 0 then init ()
  else begin
    let chunks = Stdlib.min chunks n in
    Obs.count "pool.chunks" chunks;
    let accs =
      run_thunks ~label pool
        (Array.init chunks (fun c ->
             let lo = c * n / chunks and hi = (c + 1) * n / chunks in
             fun () ->
               let acc = ref (init ()) in
               for i = lo to hi - 1 do
                 acc := body !acc i
               done;
               !acc))
    in
    let total = ref accs.(0) in
    for c = 1 to Array.length accs - 1 do
      total := combine !total accs.(c)
    done;
    !total
  end

let triangle_bands ?(bands = default_chunks) n =
  if n < 0 then invalid_arg "Parallel.triangle_bands: negative size";
  if bands < 1 then invalid_arg "Parallel.triangle_bands: need >= 1 band";
  let rows = Stdlib.max 0 (n - 1) in
  if rows = 0 then [||]
  else begin
    let bands = Stdlib.min bands rows in
    let total = n * (n - 1) / 2 in
    let out = ref [] in
    let start = ref 0 in
    let covered = ref 0 in
    let band = ref 1 in
    for a = 0 to rows - 1 do
      covered := !covered + (n - 1 - a);
      (* Close the band once it reaches its cumulative pair quota. *)
      if a = rows - 1 || (!band < bands && !covered * bands >= !band * total)
      then begin
        out := (!start, a + 1) :: !out;
        start := a + 1;
        incr band
      end
    done;
    Array.of_list (List.rev !out)
  end

let triangle_reduce ?bands ?(label = "band") pool ~n ~init ~row ~combine =
  let ranges = triangle_bands ?bands n in
  if Array.length ranges = 0 then init ()
  else begin
    Obs.count "pool.bands" (Array.length ranges);
    let accs =
      run_thunks ~label pool
        (Array.map
           (fun (lo, hi) () ->
             let acc = ref (init ()) in
             for a = lo to hi - 1 do
               acc := row !acc a
             done;
             !acc)
           ranges)
    in
    let total = ref accs.(0) in
    for c = 1 to Array.length accs - 1 do
      total := combine !total accs.(c)
    done;
    !total
  end

let triangle_band_reduce ?bands ?(label = "band") pool ~n ~init ~band ~combine
    =
  let ranges = triangle_bands ?bands n in
  if Array.length ranges = 0 then init ()
  else begin
    Obs.count "pool.bands" (Array.length ranges);
    let accs =
      run_thunks ~label pool
        (Array.map (fun (lo, hi) () -> band (init ()) ~lo ~hi) ranges)
    in
    let total = ref accs.(0) in
    for c = 1 to Array.length accs - 1 do
      total := combine !total accs.(c)
    done;
    !total
  end

let tri_size n = n * (n + 1) / 2

let tri_index ~n ~i ~j =
  if not (0 <= i && i <= j && j < n) then
    invalid_arg "Parallel.tri_index: need 0 <= i <= j < n";
  (i * n) - (i * (i - 1) / 2) + (j - i)
