let eval coeffs x =
  let n = Array.length coeffs in
  let rec horner i acc = if i < 0 then acc else horner (i - 1) ((acc *. x) +. coeffs.(i)) in
  if n = 0 then 0.0 else horner (n - 2) coeffs.(n - 1)

(* Fit in a centered/scaled coordinate u = (x - mu)/s for conditioning,
   then expand the polynomial back to the x coordinate. *)
let fit ?(degree = 2) xs ys =
  let n = Array.length xs in
  if Array.length ys <> n then invalid_arg "Polyfit.fit: length mismatch";
  if n <= degree then invalid_arg "Polyfit.fit: need more points than degree";
  let mu = Stats.mean xs in
  let s =
    let sd = Stats.std xs in
    if sd > 0.0 then sd else 1.0
  in
  let us = Array.map (fun x -> (x -. mu) /. s) xs in
  let m = degree + 1 in
  (* Normal equations: (VᵀV) c = Vᵀ y with Vandermonde V in u. *)
  let ata = Matrix.create ~rows:m ~cols:m in
  let aty = Array.make m 0.0 in
  let pow = Array.make ((2 * degree) + 1) 0.0 in
  Array.iteri
    (fun idx u ->
      let p = ref 1.0 in
      for k = 0 to 2 * degree do
        pow.(k) <- pow.(k) +. !p;
        p := !p *. u
      done;
      let p = ref 1.0 in
      for k = 0 to degree do
        aty.(k) <- aty.(k) +. (!p *. ys.(idx));
        p := !p *. u
      done)
    us;
  for i = 0 to degree do
    for j = 0 to degree do
      Matrix.set ata i j pow.(i + j)
    done
  done;
  let l = Cholesky.decompose ata in
  let cu = Cholesky.solve l aty in
  (* Expand p(u) = sum cu_k ((x-mu)/s)^k into coefficients of x via
     binomial expansion. *)
  let cx = Array.make m 0.0 in
  let binom = Array.make_matrix m m 0.0 in
  for i = 0 to degree do
    binom.(i).(0) <- 1.0;
    for j = 1 to i do
      binom.(i).(j) <- binom.(i - 1).(j - 1) +. binom.(i - 1).(j)
    done
  done;
  for k = 0 to degree do
    (* cu_k * (x - mu)^k / s^k *)
    let scale = cu.(k) /. (s ** float_of_int k) in
    for j = 0 to k do
      let term =
        scale *. binom.(k).(j) *. ((-.mu) ** float_of_int (k - j))
      in
      cx.(j) <- cx.(j) +. term
    done
  done;
  cx

let fit_log_quadratic ~ls ~currents =
  Array.iter
    (fun x ->
      if x <= 0.0 then
        invalid_arg "Polyfit.fit_log_quadratic: currents must be positive")
    currents;
  let ys = Array.map log currents in
  let c = fit ~degree:2 ls ys in
  (exp c.(0), c.(1), c.(2))

let rms_residual ~coeffs ~xs ~ys =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Polyfit.rms_residual: empty sample";
  let s = ref 0.0 in
  Array.iteri
    (fun i x ->
      let r = eval coeffs x -. ys.(i) in
      s := !s +. (r *. r))
    xs;
  sqrt (!s /. float_of_int n)
