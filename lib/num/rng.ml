type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  mutable spare : float option; (* cached second deviate of the polar method *)
}

(* SplitMix64 step: expands a seed into well-distributed initial state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* The SplitMix64 output mixing alone (no gamma increment). *)
let splitmix64_mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ?(seed = 42) () =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3; spare = None }

let copy t = { t with spare = t.spare }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (bits64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3; spare = None }

let stream ~seed i =
  if i < 0 then invalid_arg "Rng.stream: stream index must be non-negative";
  (* Mix the seed once, offset by the stream index, then expand through
     the usual SplitMix64 chain.  The mixed base keeps nearby seeds
     apart; distinct indices can only revisit another stream's SplitMix
     inputs after ~2^64 / gamma steps, so the four expansion outputs
     never collide across streams. *)
  let state = ref (Int64.add (splitmix64_mix (Int64.of_int seed)) (Int64.of_int i)) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3; spare = None }

let uniform t =
  (* Top 53 bits scaled to [0,1). *)
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. 0x1.0p-53

let float t bound = uniform t *. bound

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is < 2^-40 for bounds
     below 2^24, which covers all uses in this library. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 1) (Int64.of_int bound))

let rec gaussian t =
  match t.spare with
  | Some g ->
    t.spare <- None;
    g
  | None ->
    let u = (2.0 *. uniform t) -. 1.0 in
    let v = (2.0 *. uniform t) -. 1.0 in
    let s = (u *. u) +. (v *. v) in
    if s >= 1.0 || s = 0.0 then gaussian t
    else begin
      let f = sqrt (-2.0 *. log s /. s) in
      t.spare <- Some (v *. f);
      u *. f
    end

let gaussian_mu_sigma t ~mu ~sigma = mu +. (sigma *. gaussian t)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
