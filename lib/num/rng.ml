(* State lives in an int64 bigarray rather than mutable record fields:
   bigarray loads/stores compile to raw unboxed memory accesses, while
   assigning a mutable int64 field boxes the value — four minor
   allocations per drawn word, which dominated the Monte-Carlo
   replica loop's allocation profile.  Same for the polar method's
   cached deviate: a one-slot float array stores it unboxed where the
   previous [float option] allocated per pair of draws. *)
type state = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  st : state; (* xoshiro256++ state: slots 0-3 *)
  spare : float array; (* cached second deviate of the polar method *)
  mutable has_spare : bool;
}

let make_state s0 s1 s2 s3 =
  let st = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout 4 in
  Bigarray.Array1.unsafe_set st 0 s0;
  Bigarray.Array1.unsafe_set st 1 s1;
  Bigarray.Array1.unsafe_set st 2 s2;
  Bigarray.Array1.unsafe_set st 3 s3;
  st

(* SplitMix64 step: expands a seed into well-distributed initial state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* The SplitMix64 output mixing alone (no gamma increment). *)
let splitmix64_mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ?(seed = 42) () =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { st = make_state s0 s1 s2 s3; spare = [| 0.0 |]; has_spare = false }

let copy t =
  {
    st =
      make_state
        (Bigarray.Array1.get t.st 0)
        (Bigarray.Array1.get t.st 1)
        (Bigarray.Array1.get t.st 2)
        (Bigarray.Array1.get t.st 3);
    spare = [| t.spare.(0) |];
    has_spare = t.has_spare;
  }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* Same xoshiro256++ arithmetic as the historical record-field version,
   statement for statement, so streams are bit-identical. *)
let bits64 t =
  let st = t.st in
  let open Int64 in
  let s0 = Bigarray.Array1.unsafe_get st 0 in
  let s1 = Bigarray.Array1.unsafe_get st 1 in
  let s2 = Bigarray.Array1.unsafe_get st 2 in
  let s3 = Bigarray.Array1.unsafe_get st 3 in
  let result = add (rotl (add s0 s3) 23) s0 in
  let tmp = shift_left s1 17 in
  let s2 = logxor s2 s0 in
  let s3 = logxor s3 s1 in
  let s1 = logxor s1 s2 in
  let s0 = logxor s0 s3 in
  let s2 = logxor s2 tmp in
  let s3 = rotl s3 45 in
  Bigarray.Array1.unsafe_set st 0 s0;
  Bigarray.Array1.unsafe_set st 1 s1;
  Bigarray.Array1.unsafe_set st 2 s2;
  Bigarray.Array1.unsafe_set st 3 s3;
  result

let split t =
  let state = ref (bits64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { st = make_state s0 s1 s2 s3; spare = [| 0.0 |]; has_spare = false }

let stream ~seed i =
  if i < 0 then invalid_arg "Rng.stream: stream index must be non-negative";
  (* Mix the seed once, offset by the stream index, then expand through
     the usual SplitMix64 chain.  The mixed base keeps nearby seeds
     apart; distinct indices can only revisit another stream's SplitMix
     inputs after ~2^64 / gamma steps, so the four expansion outputs
     never collide across streams. *)
  let state = ref (Int64.add (splitmix64_mix (Int64.of_int seed)) (Int64.of_int i)) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { st = make_state s0 s1 s2 s3; spare = [| 0.0 |]; has_spare = false }

let uniform t =
  (* Top 53 bits scaled to [0,1). *)
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. 0x1.0p-53

let float t bound = uniform t *. bound

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is < 2^-40 for bounds
     below 2^24, which covers all uses in this library. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 1) (Int64.of_int bound))

let rec gaussian t =
  if t.has_spare then begin
    t.has_spare <- false;
    t.spare.(0)
  end
  else begin
    let u = (2.0 *. uniform t) -. 1.0 in
    let v = (2.0 *. uniform t) -. 1.0 in
    let s = (u *. u) +. (v *. v) in
    if s >= 1.0 || s = 0.0 then gaussian t
    else begin
      let f = sqrt (-2.0 *. log s /. s) in
      t.spare.(0) <- v *. f;
      t.has_spare <- true;
      u *. f
    end
  end

let gaussian_mu_sigma t ~mu ~sigma = mu +. (sigma *. gaussian t)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
