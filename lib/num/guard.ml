type diagnostic =
  | Invalid_input of string
  | Numeric of { site : string; detail : string }
  | Internal of string

exception Error of diagnostic

let invalid msg = raise (Error (Invalid_input msg))
let numeric ~site detail = raise (Error (Numeric { site; detail }))
let internal msg = raise (Error (Internal msg))

let to_string = function
  | Invalid_input msg -> "invalid input: " ^ msg
  | Numeric { site; detail } -> Printf.sprintf "numeric (%s): %s" site detail
  | Internal msg -> "internal: " ^ msg

let class_name = function
  | Invalid_input _ -> "invalid-input"
  | Numeric _ -> "numeric"
  | Internal _ -> "internal"

let exit_code = function
  | Invalid_input _ -> 2
  | Numeric _ -> 3
  | Internal _ -> 4

let protect f =
  match f () with
  | v -> Ok v
  | exception Error d -> Result.Error d
  | exception Out_of_memory -> raise Out_of_memory
  | exception Stack_overflow -> raise Stack_overflow
  | exception Invalid_argument msg -> Result.Error (Invalid_input msg)
  | exception Failure msg -> Result.Error (Invalid_input msg)
  | exception e -> Result.Error (Internal (Printexc.to_string e))

let check_finite ~site ~name v =
  if Float.is_finite v then v
  else
    numeric ~site
      (Printf.sprintf "%s is %s" name
         (if Float.is_nan v then "NaN" else "infinite"))

module Fault = struct
  type spec = { site : string; prob : float; seed : int }

  let known_sites =
    [ "parallel"; "cholesky"; "quadrature"; "linear.f"; "cache"; "delta" ]

  type site_state = { prob : float; seed : int; counter : int Atomic.t }

  (* The armed-site table is tiny (<= 4 entries) and read-only between
     [configure] calls, so probes scan an immutable list; [active] is
     the single atomic the disarmed fast path touches. *)
  let active = Atomic.make false
  let armed : (string * site_state) list Atomic.t = Atomic.make []

  let parse_spec s =
    match String.split_on_char ':' (String.trim s) with
    | [ site; prob; seed ] -> (
      match (float_of_string_opt prob, int_of_string_opt seed) with
      | Some p, Some sd when p >= 0.0 && p <= 1.0 ->
        if List.mem site known_sites then Ok { site; prob = p; seed = sd }
        else
          Result.Error
            (Printf.sprintf "unknown fault site %S (known: %s)" site
               (String.concat ", " known_sites))
      | Some _, Some _ ->
        Result.Error
          (Printf.sprintf "fault probability %S outside [0, 1]" prob)
      | _ ->
        Result.Error
          (Printf.sprintf "cannot parse fault spec %S (want SITE:PROB:SEED)" s))
    | _ ->
      Result.Error
        (Printf.sprintf "cannot parse fault spec %S (want SITE:PROB:SEED)" s)

  let configure specs =
    (* [fire] resolves a site with List.assoc: a duplicate would be
       silently shadowed, so two --fault-spec flags for one site would
       arm only the first — reject the configuration instead. *)
    let rec check_dups = function
      | [] -> ()
      | { site; _ } :: rest ->
        if List.exists (fun s -> String.equal s.site site) rest then
          invalid
            (Printf.sprintf "duplicate fault spec for site %S" site);
        check_dups rest
    in
    check_dups specs;
    Atomic.set armed
      (List.map
         (fun { site; prob; seed } ->
           (site, { prob; seed; counter = Atomic.make 0 }))
         specs);
    Atomic.set active (specs <> [])

  let clear () = configure []
  let enabled () = Atomic.get active

  let fire site =
    Atomic.get active
    && (match List.assoc_opt site (Atomic.get armed) with
       | None -> false
       | Some s ->
         let k = Atomic.fetch_and_add s.counter 1 in
         (* Decision k is a pure function of (seed, k): materialize the
            k-th SplitMix64 replica stream and take its first uniform
            draw.  Identical specs therefore produce identical fault
            sequences, independent of scheduling. *)
         Rng.uniform (Rng.stream ~seed:s.seed k) < s.prob)

  let corrupt_nan site v = if fire site then Float.nan else v
end
