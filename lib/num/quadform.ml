exception Divergent

(* Whitening route: with sigma = L Lᵀ and u = Lᵀ b, the expectation is
   det(I − 2 LᵀAL)^{-1/2} · exp(c + ½ uᵀ (I − 2 LᵀAL)^{-1} u),
   and I − 2 LᵀAL is symmetric, so its positive definiteness (= existence
   of the expectation) is exactly what Cholesky tests. *)
let expectation_exp ~sigma ~a ~b ~c =
  let n = Matrix.rows sigma in
  if Matrix.cols sigma <> n || Matrix.rows a <> n || Matrix.cols a <> n then
    invalid_arg "Quadform.expectation_exp: dimension mismatch";
  if Array.length b <> n then
    invalid_arg "Quadform.expectation_exp: vector dimension mismatch";
  let l = Cholesky.decompose_semidefinite sigma in
  let lt = Matrix.transpose l in
  let bmat = Matrix.mul lt (Matrix.mul a l) in
  let m = Matrix.sub (Matrix.identity n) (Matrix.scale 2.0 bmat) in
  let factor =
    try Cholesky.decompose m
    with Cholesky.Not_positive_definite _ -> raise Divergent
  in
  let u = Matrix.mul_vec lt b in
  let minv_u = Cholesky.solve factor u in
  let quad = 0.5 *. Vector.dot u minv_u in
  exp (c +. quad -. (0.5 *. Cholesky.log_det factor))

let expectation_exp_1d ~sigma2 ~a ~b ~c =
  let denom = 1.0 -. (2.0 *. a *. sigma2) in
  if denom <= 0.0 then raise Divergent;
  exp (c +. (b *. b *. sigma2 /. (2.0 *. denom))) /. sqrt denom

let expectation_exp_2d ~var1 ~var2 ~cov ~a11 ~a22 ~a12 ~b1 ~b2 ~c =
  let sigma = Matrix.of_arrays [| [| var1; cov |]; [| cov; var2 |] |] in
  let a = Matrix.of_arrays [| [| a11; a12 |]; [| a12; a22 |] |] in
  expectation_exp ~sigma ~a ~b:[| b1; b2 |] ~c
