(** Allocation-free flat pair-sum kernel for the exact O(n²) estimator.

    The caller stages the placed design into flat bigarray buffers —
    cells sorted by (dense type, original index) so each row's partners
    split into at most [nu] contiguous type segments — and the kernel
    sums, for every pair (a, b) with [lo <= a < hi] and [a < b], the
    linear interpolation of the per-type-pair covariance table at the
    pair's Euclidean distance.  The C stub allocates nothing and runs
    SIMD (AVX2 / AVX-512) when the host supports it.

    Determinism contract: within each (row, type segment), pairs are
    consumed in 8-wide blocks with the j-th pair of a block feeding
    lane accumulator j; segment remainders (< 8 pairs) feed a second
    8-lane bank the same way; the result is the in-order sum of
    [lane.(j) +. rem.(j)] for j = 0..7.  All per-pair arithmetic is
    plain IEEE +, -, *, sqrt with FMA contraction disabled, so scalar,
    AVX2 and AVX-512 paths — and [sum_ocaml] — return bit-identical
    results.  The value depends only on the buffer contents and
    [lo, hi), never on the job count or the host ISA. *)

type f64 = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type idx = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type buffers = {
  xs : f64;  (** x coordinate per sorted cell *)
  ys : f64;  (** y coordinate per sorted cell *)
  ty : idx;  (** dense type index per sorted cell *)
  seg : idx;  (** [nu + 1] segment starts: type t occupies [seg t, seg (t+1)) *)
  base : idx;  (** [nu * nu] element offsets of each type pair's table in [cov] *)
  cov : f64;  (** packed distance-binned covariance tables *)
  nu : int;  (** number of distinct (dense) cell types *)
  inv_dstep : float;  (** reciprocal of the distance bin width *)
  kmax : int;  (** largest valid bin index for interpolation start *)
}

type isa = Auto | Scalar | Avx2 | Avx512

val isa_name : isa -> string

val available : isa -> bool
(** [available isa] is true when the host CPU can run [isa].  [Auto]
    and [Scalar] are always available. *)

val best_isa : unit -> isa
(** The widest supported ISA; what [Auto] dispatches to. *)

val selected_isa : unit -> string
(** [isa_name (best_isa ())], for bench metadata. *)

val sum : ?isa:isa -> buffers -> lo:int -> hi:int -> float
(** [sum b ~lo ~hi] is the pair sum over rows [lo, hi).  Raises
    [Invalid_argument] on inconsistent buffer dimensions or row range.
    [?isa] defaults to [Auto]; requesting an unavailable ISA silently
    falls back to [Scalar] (same bits by contract). *)

val sum_ocaml : buffers -> lo:int -> hi:int -> float
(** Pure-OCaml mirror of the scalar kernel, bit-identical to [sum] by
    the lane contract.  Test oracle; roughly 3x slower than the C
    scalar path. *)

val acc_band :
  buffers -> scale:f64 -> acc:Xsum.t -> lo:int -> hi:int -> unit
(** [acc_band b ~scale ~acc ~lo ~hi] accumulates, exactly into [acc],
    the term [(scale.(a) *. scale.(b)) *. w_ab] for every pair with
    [lo <= a < hi] and [a < b], where [w_ab] is the same interpolated
    covariance as {!sum} computes.  Because the accumulation is exact,
    the represented value is independent of band split and iteration
    order — [Xsum.merge] of disjoint bands equals one full pass. *)

val acc_row :
  buffers -> scale:f64 -> acc:Xsum.t -> row:int -> srow:float -> unit
(** [acc_row b ~scale ~acc ~row ~srow] accumulates
    [(srow *. scale.(b)) *. w_rb] for every partner [b <> row].  The
    per-pair term doubles are identical to {!acc_band}'s for the same
    pair when [srow = scale.(row)] (distance and table lookups are
    symmetric; IEEE multiplication commutes), so passing
    [-.scale.(row)] retracts a row exactly and passing a new scale
    re-adds it — the O(n) swap update of the delta estimator. *)
