(** Descriptive statistics.

    [Acc] is a single-pass Welford accumulator for mean/variance; the
    array-based functions below are conveniences for data already in
    memory.  All variances are the unbiased sample variance unless
    stated otherwise. *)

module Acc : sig
  type t
  (** Mutable running accumulator. *)

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  (** Unbiased sample variance; 0 when fewer than two samples. *)

  val std : t -> float
  val min : t -> float
  val max : t -> float
end

module Cov_acc : sig
  type t
  (** Running accumulator for the covariance of a paired sample. *)

  val create : unit -> t
  val add : t -> float -> float -> unit
  val count : t -> int
  val covariance : t -> float
  val correlation : t -> float
  (** Pearson correlation; 0 if either marginal variance is 0. *)
end

val mean : float array -> float
val variance : float array -> float
val std : float array -> float
val covariance : float array -> float array -> float
val correlation : float array -> float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], linear interpolation between
    order statistics.  Does not modify [xs]. *)

val histogram : float array -> bins:int -> (float * int) array
(** Equal-width histogram; each entry is (bin lower edge, count). *)

val relative_error : actual:float -> reference:float -> float
(** [(actual - reference) / reference]; raises if [reference] is 0. *)
