(** Descriptive statistics.

    [Acc] is a single-pass Welford accumulator for mean/variance; the
    array-based functions below are conveniences for data already in
    memory.  All variances are the unbiased sample variance unless
    stated otherwise. *)

module Acc : sig
  type t
  (** Mutable running accumulator. *)

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  (** Unbiased sample variance; 0 when fewer than two samples. *)

  val std : t -> float
  val min : t -> float
  val max : t -> float
end

module Cov_acc : sig
  type t
  (** Running accumulator for the covariance of a paired sample. *)

  val create : unit -> t
  val add : t -> float -> float -> unit
  val count : t -> int
  val covariance : t -> float
  val correlation : t -> float
  (** Pearson correlation; 0 if either marginal variance is 0. *)
end

val mean : float array -> float
val variance : float array -> float
val std : float array -> float
val covariance : float array -> float array -> float
val correlation : float array -> float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], linear interpolation between
    order statistics.  Does not modify [xs]. *)

val histogram : float array -> bins:int -> (float * int) array
(** Equal-width histogram; each entry is (bin lower edge, count). *)

val relative_error : actual:float -> reference:float -> float
(** [(actual - reference) / reference]; raises if [reference] is 0. *)

(** {2 Sampling-error helpers}

    Confidence-interval building blocks for comparing analytic
    estimates against Monte Carlo references: an MC estimate carries
    sampling error, so agreement must be judged against its confidence
    interval, never against a fixed epsilon.  The standard errors are
    the large-sample normal approximations; [std_se] additionally
    assumes near-normal samples (for the skewed leakage sums it is
    still the right order of magnitude, which is all an equivalence
    gate needs). *)

val z_of_confidence : float -> float
(** Two-sided critical value: [z_of_confidence 0.99 = 2.576...].
    Raises [Invalid_argument] outside (0,1). *)

val mean_se : std:float -> count:int -> float
(** Standard error of a sample mean: [std / sqrt count]. *)

val std_se : std:float -> count:int -> float
(** Asymptotic standard error of a sample standard deviation:
    [std / sqrt (2 (count - 1))]. *)

val std_se_kurtosis : std:float -> kurtosis:float -> count:int -> float
(** Delta-method SE of a sample standard deviation for non-normal
    data: [std · √((κ − 1) / 4n)] with [kurtosis] the fourth
    standardized moment (normal: 3, recovering {!std_se} up to O(1/n)).
    The excess is floored at the normal value, so heavy tails widen the
    interval but light tails never shrink it below normal theory. *)

val kurtosis : float array -> float
(** Sample kurtosis [m₄ / m₂²] (biased, fine for standard errors).
    Raises [Invalid_argument] on fewer than 4 samples or zero
    variance. *)

val z_score : value:float -> center:float -> se:float -> float
(** [(value - center) / se]; raises unless [se > 0]. *)

val wilson_interval : hits:int -> count:int -> z:float -> float * float
(** Wilson score interval [(lo, hi)] for a binomial proportion at
    two-sided critical value [z].  Stays inside [0,1] and keeps near
    nominal coverage even at a handful of hits, unlike the Wald
    interval.  Raises [Invalid_argument] on [count <= 0], hits outside
    [0, count], or a non-positive [z]. *)
