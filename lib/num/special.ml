(* erfc via the Numerical-Recipes Chebyshev fit (accurate to ~1.2e-7),
   with symmetry for negative arguments. *)
let erfc x =
  let z = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.5 *. z)) in
  let poly =
    -1.26551223
    +. t
       *. (1.00002368
          +. t
             *. (0.37409196
                +. t
                   *. (0.09678418
                      +. t
                         *. (-0.18628806
                            +. t
                               *. (0.27886807
                                  +. t
                                     *. (-1.13520398
                                        +. t
                                           *. (1.48851587
                                              +. t
                                                 *. (-0.82215223
                                                    +. (t *. 0.17087277)))))))))
  in
  let ans = t *. exp ((-.z *. z) +. poly) in
  if x >= 0.0 then ans else 2.0 -. ans

let erf x = 1.0 -. erfc x

let sqrt2 = sqrt 2.0
let inv_sqrt_2pi = 1.0 /. sqrt (2.0 *. Float.pi)
let normal_cdf x = 0.5 *. erfc (-.x /. sqrt2)
let normal_pdf x = inv_sqrt_2pi *. exp (-0.5 *. x *. x)

(* Acklam's rational approximation for the probit, then one Halley step. *)
let normal_quantile p =
  if not (p > 0.0 && p < 1.0) then
    invalid_arg "Special.normal_quantile: argument must be in (0,1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  and b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  and c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  and d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let tail_num q =
    ((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q
    +. c.(5)
  and tail_den q =
    (((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0
  in
  let x =
    if p < p_low then begin
      let q = sqrt (-2.0 *. log p) in
      tail_num q /. tail_den q
    end
    else if p <= 1.0 -. p_low then begin
      let q = p -. 0.5 in
      let r = q *. q in
      (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
       *. r +. a.(5))
      *. q
      /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4))
          *. r +. 1.0)
    end
    else begin
      let q = sqrt (-2.0 *. log (1.0 -. p)) in
      -.(tail_num q /. tail_den q)
    end
  in
  (* Halley refinement: one step brings the result to near machine accuracy. *)
  let e = normal_cdf x -. p in
  let u = e *. sqrt (2.0 *. Float.pi) *. exp (x *. x /. 2.0) in
  x -. (u /. (1.0 +. (x *. u /. 2.0)))

(* Upper-tail probability P(Z > x).  Going through erfc keeps full
   relative accuracy in the far tail, where [1 -. normal_cdf x] would
   cancel to zero beyond x ~ 8. *)
let normal_sf x = 0.5 *. erfc (x /. sqrt2)

(* Upper-tail quantile: the z with P(Z > z) = q.  For moderate q this
   is [-normal_quantile q]; the point of a separate entry is the far
   tail, where the seed comes from Acklam's tail branch evaluated on q
   directly (no 1 - q cancellation) and the Halley refinement targets
   the survival function instead of the CDF.  Usable down to the
   smallest q where exp(-z²/2) is representable (q ~ 1e-300). *)
let normal_tail_quantile q =
  if not (q > 0.0 && q < 1.0) then
    invalid_arg "Special.normal_tail_quantile: argument must be in (0,1)";
  if q >= 0.5 then -.normal_quantile q
  else begin
    (* Acklam tail seed for the lower-tail quantile of q, negated. *)
    let c =
      [| -7.784894002430293e-03; -3.223964580411365e-01;
         -2.400758277161838e+00; -2.549732539343734e+00;
         4.374664141464968e+00; 2.938163982698783e+00 |]
    and d =
      [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
         3.754408661907416e+00 |]
    in
    let r = sqrt (-2.0 *. log q) in
    let num =
      ((((c.(0) *. r +. c.(1)) *. r +. c.(2)) *. r +. c.(3)) *. r +. c.(4))
      *. r
      +. c.(5)
    and den =
      (((d.(0) *. r +. d.(1)) *. r +. d.(2)) *. r +. d.(3)) *. r +. 1.0
    in
    let x = -.(num /. den) in
    (* Halley step against the survival function: sf' = -pdf.  The
       ratio (sf x - q) / pdf x is well-scaled even when both terms
       underflow-adjacent, because they shrink together. *)
    let e = normal_sf x -. q in
    let pdf = normal_pdf x in
    if pdf > 0.0 then begin
      let u = e /. pdf in
      x +. (u /. (1.0 -. (x *. u /. 2.0)))
    end
    else x
  end

let log_sum_exp a =
  if Array.length a = 0 then invalid_arg "Special.log_sum_exp: empty array";
  let m = Array.fold_left Float.max neg_infinity a in
  if m = neg_infinity then neg_infinity
  else begin
    let s = Array.fold_left (fun acc x -> acc +. exp (x -. m)) 0.0 a in
    m +. log s
  end
