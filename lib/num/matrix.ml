type t = { rows : int; cols : int; data : float array }

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let init ~rows ~cols f =
  let m = create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let identity n = init ~rows:n ~cols:n (fun i j -> if i = j then 1.0 else 0.0)
let rows m = m.rows
let cols m = m.cols

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Matrix.get: index out of bounds";
  m.data.((i * m.cols) + j)

(* Lower-triangular matrix-vector product into caller storage:
   out_i = Σ_{k<=i} m[i,k]·z[k], accumulated in ascending k.  Lives
   here so the loop runs on the raw data array — without flambda a
   cross-module element accessor boxes every returned float, which in
   per-replica hot loops costs one minor allocation per multiply-add. *)
let lower_mul_vec_into m z out =
  let n = m.rows in
  if Array.length z < n || Array.length out < n then
    invalid_arg "Matrix.lower_mul_vec_into: vector shorter than the matrix";
  let data = m.data in
  for i = 0 to n - 1 do
    let row = i * m.cols in
    Array.unsafe_set out i 0.0;
    for k = 0 to i do
      Array.unsafe_set out i
        (Array.unsafe_get out i
        +. (Array.unsafe_get data (row + k) *. Array.unsafe_get z k))
    done
  done

let set m i j v =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Matrix.set: index out of bounds";
  m.data.((i * m.cols) + j) <- v

let copy m = { m with data = Array.copy m.data }
let transpose m = init ~rows:m.cols ~cols:m.rows (fun i j -> get m j i)

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  let m = create ~rows:a.rows ~cols:b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          m.data.((i * b.cols) + j) <-
            m.data.((i * b.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  m

let mul_vec m x =
  if m.cols <> Array.length x then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let s = ref 0.0 in
      for j = 0 to m.cols - 1 do
        s := !s +. (m.data.((i * m.cols) + j) *. x.(j))
      done;
      !s)

let map2 f a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Matrix: shape mismatch";
  { a with data = Array.mapi (fun i x -> f x b.data.(i)) a.data }

let add = map2 ( +. )
let sub = map2 ( -. )
let scale alpha m = { m with data = Array.map (fun x -> alpha *. x) m.data }

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then create ~rows:0 ~cols:0
  else begin
    let cols = Array.length a.(0) in
    Array.iter
      (fun row ->
        if Array.length row <> cols then
          invalid_arg "Matrix.of_arrays: ragged rows")
      a;
    init ~rows ~cols (fun i j -> a.(i).(j))
  end

let to_arrays m =
  Array.init m.rows (fun i -> Array.init m.cols (fun j -> get m i j))

let is_symmetric ?(tol = 1e-12) m =
  m.rows = m.cols
  &&
  let ok = ref true in
  for i = 0 to m.rows - 1 do
    for j = i + 1 to m.cols - 1 do
      if Float.abs (get m i j -. get m j i) > tol then ok := false
    done
  done;
  !ok

let max_abs_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Matrix.max_abs_diff: shape mismatch";
  let m = ref 0.0 in
  Array.iteri
    (fun i x -> m := Float.max !m (Float.abs (x -. b.data.(i))))
    a.data;
  !m

let check_2x2 m =
  if m.rows <> 2 || m.cols <> 2 then invalid_arg "Matrix: expected 2x2"

let det2 m =
  check_2x2 m;
  (get m 0 0 *. get m 1 1) -. (get m 0 1 *. get m 1 0)

let inv2 m =
  check_2x2 m;
  let d = det2 m in
  if Float.abs d < 1e-300 then invalid_arg "Matrix.inv2: singular matrix";
  of_arrays
    [| [| get m 1 1 /. d; -.get m 0 1 /. d |];
       [| -.get m 1 0 /. d; get m 0 0 /. d |] |]
