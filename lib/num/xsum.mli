(** Exact (superaccumulator) summation of doubles.

    A value of type {!t} holds an exact fixed-point representation of a
    running sum: every [add] is reflected without rounding, so the
    represented value is a pure function of the multiset of terms added
    — independent of order, grouping, or how partial accumulators were
    [merge]d.  Subtraction is exact too (add the negated term), which
    makes retract-and-replace updates bit-identical to a cold rebuild:
    the property the delta estimator's equivalence battery relies on.

    [value] first normalizes the limbs into a canonical form and then
    rounds once to the nearest double, so extraction is deterministic.
    Capacity is ~2^42 accumulated terms, far beyond any pair loop here;
    non-finite terms poison the accumulator and [value] returns NaN
    (picked up by the Guard at the ["delta"] site). *)

type t

val create : unit -> t
(** A fresh accumulator holding exactly zero. *)

val copy : t -> t
(** Independent copy; further adds to either side don't affect the
    other.  O(limbs) — cheap relative to any O(n) row pass. *)

val add : t -> float -> unit
(** [add t x] accumulates [x] exactly.  [add t (-.x)] retracts a
    previously added [x] exactly. *)

val merge : into:t -> t -> unit
(** [merge ~into src] adds [src]'s exact content into [into].
    Exact limb-wise addition: merging band partials in any order
    yields the same represented value. *)

val value : t -> float
(** Canonical correctly-rounded double of the exact sum; NaN if any
    non-finite term was added. *)

val raw : t -> (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The underlying limb buffer, for the C pair-accumulation kernels. *)
