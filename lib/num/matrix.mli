(** Dense row-major float matrices. *)

type t

val create : rows:int -> cols:int -> t
(** Zero matrix. *)

val init : rows:int -> cols:int -> (int -> int -> float) -> t
val identity : int -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float

(** [lower_mul_vec_into m z out] sets [out.(i) = Σ_{k<=i} m[i,k]·z.(k)]
    for each row [i], accumulating in ascending [k] — the
    lower-triangular product used to color Gaussian samples through a
    Cholesky factor.  Allocation-free: results land in [out] (length >=
    the row count, like [z]).  Raises [Invalid_argument] on short
    vectors. *)
val lower_mul_vec_into : t -> Vector.t -> Vector.t -> unit
val set : t -> int -> int -> float -> unit
val copy : t -> t
val transpose : t -> t
val mul : t -> t -> t
val mul_vec : t -> Vector.t -> Vector.t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val of_arrays : float array array -> t
val to_arrays : t -> float array array
val is_symmetric : ?tol:float -> t -> bool
val max_abs_diff : t -> t -> float

val det2 : t -> float
(** Determinant of a 2x2 matrix; raises on other shapes. *)

val inv2 : t -> t
(** Inverse of a 2x2 matrix; raises on other shapes or a singular input. *)
