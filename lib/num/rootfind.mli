(** Scalar root finding, used by the transistor-stack solver to find
    intermediate node voltages. *)

exception No_bracket
(** Raised when the supplied interval does not bracket a sign change. *)

val bisect :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> float
(** Bisection on [\[lo, hi\]]; requires [f lo] and [f hi] to have opposite
    signs (raises [No_bracket] otherwise).  [tol] (default 1e-12) bounds
    the interval width at exit. *)

val brent :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> float
(** Brent's method: inverse quadratic interpolation with bisection
    safeguards.  Same bracketing contract as [bisect], typically an
    order of magnitude fewer function evaluations. *)

val newton :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> df:(float -> float) ->
  float -> float
(** Newton–Raphson from [x0]; falls back on raising [Failure] if it
    does not converge in [max_iter] (default 100) steps. *)
