(** Numerical integration.

    Gauss–Legendre rules are precomputed by Newton iteration on the
    Legendre polynomials, so any order is available without tables.
    These routines are the engine of the paper's constant-time
    estimator (Eqs. 20 and 25/26). *)

val gauss_legendre_nodes : int -> (float * float) array
(** [gauss_legendre_nodes n] returns the [n] (node, weight) pairs on
    [\[-1, 1\]]. Results are memoized per order. *)

val gauss_legendre : ?order:int -> (float -> float) -> lo:float -> hi:float -> float
(** Fixed-order (default 64) Gauss–Legendre integral of [f] on
    [\[lo, hi\]]. *)

val adaptive_simpson :
  ?tol:float -> ?max_depth:int -> (float -> float) -> lo:float -> hi:float -> float
(** Adaptive Simpson integration with absolute tolerance [tol]
    (default 1e-10) and recursion cap [max_depth] (default 40). *)

val gauss_legendre_guarded :
  ?order:int ->
  ?check_order:int ->
  ?rtol:float ->
  (float -> float) ->
  lo:float -> hi:float ->
  float
(** Guarded Gauss–Legendre: evaluates the rule at [order] and at
    [check_order] (default [order/2]); when the two agree to within
    relative [rtol] (default 1e-6) the full-order value is returned
    bit-for-bit, so the guardrail never perturbs converged results.
    Otherwise — non-convergent integrand, NaN, or the ["quadrature"]
    fault site fired — it falls back to {!adaptive_simpson} at the
    matching absolute tolerance, raising {!Guard.Error} ([Numeric],
    site ["quadrature"]) if even the fallback is non-finite. *)

val gauss_legendre_2d :
  ?order:int ->
  (float -> float -> float) ->
  x_lo:float -> x_hi:float -> y_lo:float -> y_hi:float ->
  float
(** Tensor-product Gauss–Legendre rule for 2-D integrals on a rectangle
    (default order 64 per axis). *)

val gauss_legendre_2d_guarded :
  ?order:int ->
  ?check_order:int ->
  ?rtol:float ->
  (float -> float -> float) ->
  x_lo:float -> x_hi:float -> y_lo:float -> y_hi:float ->
  float
(** 2-D analogue of {!gauss_legendre_guarded}; the fallback is
    iterated adaptive Simpson. *)

val trapezoid : (float -> float) -> lo:float -> hi:float -> n:int -> float
(** Composite trapezoid with [n] panels, used as an independent
    cross-check in tests. *)

val gauss_hermite_nodes : int -> (float * float) array
(** [n] (node, weight) pairs for the weight [exp(−x²)] on the real line
    (physicists' convention): [∫ e^{−x²} f(x) dx ≈ Σ wᵢ f(xᵢ)].
    Memoized per order. *)

val normal_expectation :
  ?order:int -> (float -> float) -> mu:float -> sigma:float -> float
(** [E\[f(X)\]] for [X ~ N(mu, sigma²)] by Gauss–Hermite quadrature
    (default order 64) — the natural rule for the moment integrals of
    the characterization step. *)
