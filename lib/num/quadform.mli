(** Expectations of exponentials of Gaussian quadratic forms.

    For [z ~ N(0, sigma)] (n-dimensional) and the scalar
    [q(z) = zᵀ a z + bᵀ z + c], computes [E\[exp q(z)\]] in closed form:

    [E = det(I − 2 sigma a)^{-1/2} · exp(c + ½ bᵀ (I − 2 sigma a)^{-1} sigma b)]

    This is the engine behind both the single-cell non-central-χ² MGF
    (Eqs. 1–5 of the paper) and the exact pairwise leakage-correlation
    mapping f_{m,n}(ρ_L) of §2.1.3. *)

exception Divergent
(** Raised when [I − 2 sigma a] is not positive definite, i.e. the
    expectation does not exist. *)

val expectation_exp :
  sigma:Matrix.t -> a:Matrix.t -> b:Vector.t -> c:float -> float
(** General n-dimensional case; [sigma] must be symmetric positive
    semi-definite, [a] symmetric.  Raises [Divergent] when the integral
    diverges. *)

val expectation_exp_1d : sigma2:float -> a:float -> b:float -> c:float -> float
(** Scalar specialization for [z ~ N(0, sigma2)]:
    [E\[exp (a z² + b z + c)\]]. *)

val expectation_exp_2d :
  var1:float -> var2:float -> cov:float ->
  a11:float -> a22:float -> a12:float ->
  b1:float -> b2:float -> c:float ->
  float
(** Bivariate specialization with covariance matrix
    [\[\[var1, cov\]; \[cov, var2\]\]] and quadratic form
    [a11 z1² + a22 z2² + 2 a12 z1 z2 + b1 z1 + b2 z2 + c]. *)
