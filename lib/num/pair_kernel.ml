module Obs = Rgleak_obs.Obs

type f64 = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type idx = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type buffers = {
  xs : f64;
  ys : f64;
  ty : idx;
  seg : idx;
  base : idx;
  cov : f64;
  nu : int;
  inv_dstep : float;
  kmax : int;
}

type isa = Auto | Scalar | Avx2 | Avx512

let isa_code = function Auto -> 0 | Scalar -> 1 | Avx2 -> 2 | Avx512 -> 3
let isa_name = function
  | Auto -> "auto"
  | Scalar -> "scalar"
  | Avx2 -> "avx2"
  | Avx512 -> "avx512"

external isa_supported_stub : int -> bool = "rgleak_pair_isa_supported"
[@@noalloc]

external best_isa_stub : unit -> int = "rgleak_pair_best_isa" [@@noalloc]

let available = function
  | Auto | Scalar -> true
  | isa -> isa_supported_stub (isa_code isa)

let best_isa () =
  match best_isa_stub () with
  | 2 -> Avx2
  | 3 -> Avx512
  | _ -> Scalar

let selected_isa () = isa_name (best_isa ())

external sum_stub :
  f64 ->
  f64 ->
  idx ->
  idx ->
  idx ->
  f64 ->
  int ->
  float ->
  int ->
  int ->
  int ->
  int ->
  float = "rgleak_pair_sum_bc" "rgleak_pair_sum"

let validate b ~lo ~hi =
  let n = Bigarray.Array1.dim b.xs in
  if Bigarray.Array1.dim b.ys <> n || Bigarray.Array1.dim b.ty <> n then
    invalid_arg "Pair_kernel: xs/ys/ty length mismatch";
  if b.nu < 0 || Bigarray.Array1.dim b.seg <> b.nu + 1 then
    invalid_arg "Pair_kernel: seg must have nu+1 entries";
  if Bigarray.Array1.dim b.base <> b.nu * b.nu then
    invalid_arg "Pair_kernel: base must have nu*nu entries";
  if b.nu > 0 && Bigarray.Array1.get b.seg b.nu <> n then
    invalid_arg "Pair_kernel: seg must end at the cell count";
  if b.kmax < 0 || b.kmax + 1 >= Bigarray.Array1.dim b.cov then
    invalid_arg "Pair_kernel: kmax out of covariance-table range";
  if lo < 0 || hi > n || lo > hi then invalid_arg "Pair_kernel: bad row range"

let sum ?(isa = Auto) b ~lo ~hi =
  validate b ~lo ~hi;
  sum_stub b.xs b.ys b.ty b.seg b.base b.cov b.nu b.inv_dstep b.kmax lo hi
    (isa_code isa)

external acc_stub :
  f64 ->
  f64 ->
  idx ->
  idx ->
  idx ->
  f64 ->
  f64 ->
  (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t ->
  int ->
  float ->
  int ->
  int ->
  int ->
  unit = "rgleak_pair_acc_bc" "rgleak_pair_acc"

external acc_row_stub :
  f64 ->
  f64 ->
  idx ->
  idx ->
  idx ->
  f64 ->
  f64 ->
  (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t ->
  int ->
  float ->
  int ->
  int ->
  float ->
  unit = "rgleak_pair_acc_row_bc" "rgleak_pair_acc_row"

let validate_scale b scale =
  if Bigarray.Array1.dim scale <> Bigarray.Array1.dim b.xs then
    invalid_arg "Pair_kernel: scale length mismatch"

let acc_band b ~scale ~acc ~lo ~hi =
  validate b ~lo ~hi;
  validate_scale b scale;
  acc_stub b.xs b.ys b.ty b.seg b.base b.cov scale (Xsum.raw acc) b.nu
    b.inv_dstep b.kmax lo hi

let acc_row b ~scale ~acc ~row ~srow =
  validate b ~lo:0 ~hi:(Bigarray.Array1.dim b.xs);
  validate_scale b scale;
  if row < 0 || row >= Bigarray.Array1.dim b.xs then
    invalid_arg "Pair_kernel: row out of range";
  acc_row_stub b.xs b.ys b.ty b.seg b.base b.cov scale (Xsum.raw acc) b.nu
    b.inv_dstep b.kmax row srow

let lanes = 8

(* Pure-OCaml mirror of the scalar C kernel, kept as the readable
   specification of the lane contract and as the bitwise test oracle.
   Every arithmetic step matches pair_kernel_stubs.c statement for
   statement. *)
let sum_ocaml b ~lo ~hi =
  validate b ~lo ~hi;
  let open Bigarray.Array1 in
  let xs = b.xs and ys = b.ys and ty = b.ty in
  let seg = b.seg and base = b.base and cov = b.cov in
  let nu = b.nu and inv_dstep = b.inv_dstep and kmax = b.kmax in
  let acc = Array.make lanes 0.0 in
  let rem = Array.make lanes 0.0 in
  for a = lo to hi - 1 do
    let xa = unsafe_get xs a and ya = unsafe_get ys a in
    let rowbase = unsafe_get ty a * nu in
    for t = 0 to nu - 1 do
      let b0 = Stdlib.max (unsafe_get seg t) (a + 1) in
      let e = unsafe_get seg (t + 1) in
      let tb = unsafe_get base (rowbase + t) in
      let pair dst j p =
        let dx = unsafe_get xs p -. xa and dy = unsafe_get ys p -. ya in
        let d = sqrt ((dx *. dx) +. (dy *. dy)) in
        let pos = d *. inv_dstep in
        let k = int_of_float pos in
        let k = if k < 0 then 0 else if k > kmax then kmax else k in
        let t0 = unsafe_get cov (tb + k) and t1 = unsafe_get cov (tb + k + 1) in
        Array.unsafe_set dst j
          (Array.unsafe_get dst j
          +. (t0 +. ((pos -. float_of_int k) *. (t1 -. t0))))
      in
      let p = ref b0 in
      while !p + lanes <= e do
        for j = 0 to lanes - 1 do
          pair acc j (!p + j)
        done;
        p := !p + lanes
      done;
      let j = ref 0 in
      while !p < e do
        pair rem !j !p;
        incr p;
        incr j
      done
    done
  done;
  let s = ref 0.0 in
  for j = 0 to lanes - 1 do
    s := !s +. (acc.(j) +. rem.(j))
  done;
  !s
