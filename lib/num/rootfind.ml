exception No_bracket

let check_bracket flo fhi = if flo *. fhi > 0.0 then raise No_bracket

let bisect ?(tol = 1e-12) ?(max_iter = 200) f ~lo ~hi =
  let flo = f lo and fhi = f hi in
  if flo = 0.0 then lo
  else if fhi = 0.0 then hi
  else begin
    check_bracket flo fhi;
    let rec go lo flo hi iter =
      let mid = 0.5 *. (lo +. hi) in
      if hi -. lo < tol || iter >= max_iter then mid
      else begin
        let fmid = f mid in
        if fmid = 0.0 then mid
        else if flo *. fmid < 0.0 then go lo flo mid (iter + 1)
        else go mid fmid hi (iter + 1)
      end
    in
    go lo flo hi 0
  end

(* Brent's method following the classical Brent (1973) formulation. *)
let brent ?(tol = 1e-12) ?(max_iter = 200) f ~lo ~hi =
  let a = ref lo and b = ref hi in
  let fa = ref (f lo) and fb = ref (f hi) in
  if !fa = 0.0 then lo
  else if !fb = 0.0 then hi
  else begin
    check_bracket !fa !fb;
    if Float.abs !fa < Float.abs !fb then begin
      let t = !a in a := !b; b := t;
      let t = !fa in fa := !fb; fb := t
    end;
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) and mflag = ref true in
    let result = ref nan in
    (try
       for _ = 1 to max_iter do
         if Float.abs (!b -. !a) < tol || !fb = 0.0 then begin
           result := !b;
           raise Exit
         end;
         let s =
           if !fa <> !fc && !fb <> !fc then
             (* inverse quadratic interpolation *)
             (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
             +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
             +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
           else !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
         in
         let cond1 =
           let lo' = ((3.0 *. !a) +. !b) /. 4.0 in
           let mn = Float.min lo' !b and mx = Float.max lo' !b in
           s < mn || s > mx
         in
         let cond2 = !mflag && Float.abs (s -. !b) >= Float.abs (!b -. !c) /. 2.0 in
         let cond3 = (not !mflag) && Float.abs (s -. !b) >= Float.abs (!c -. !d) /. 2.0 in
         let cond4 = !mflag && Float.abs (!b -. !c) < tol in
         let cond5 = (not !mflag) && Float.abs (!c -. !d) < tol in
         let s =
           if cond1 || cond2 || cond3 || cond4 || cond5 then begin
             mflag := true;
             0.5 *. (!a +. !b)
           end
           else begin
             mflag := false;
             s
           end
         in
         let fs = f s in
         d := !c;
         c := !b;
         fc := !fb;
         if !fa *. fs < 0.0 then begin
           b := s;
           fb := fs
         end
         else begin
           a := s;
           fa := fs
         end;
         if Float.abs !fa < Float.abs !fb then begin
           let t = !a in a := !b; b := t;
           let t = !fa in fa := !fb; fb := t
         end
       done;
       result := !b
     with Exit -> ());
    !result
  end

let newton ?(tol = 1e-12) ?(max_iter = 100) ~f ~df x0 =
  let rec go x iter =
    if iter >= max_iter then failwith "Rootfind.newton: no convergence";
    let fx = f x in
    if Float.abs fx < tol then x
    else begin
      let dfx = df x in
      if dfx = 0.0 then failwith "Rootfind.newton: zero derivative";
      go (x -. (fx /. dfx)) (iter + 1)
    end
  in
  go x0 0
