type t = float array

let create n = Array.make n 0.0
let init = Array.init
let dim = Array.length
let copy = Array.copy

let check_same_dim x y =
  if Array.length x <> Array.length y then
    invalid_arg "Vector: dimension mismatch"

let dot x y =
  check_same_dim x y;
  let s = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    s := !s +. (x.(i) *. y.(i))
  done;
  !s

let norm2 x = sqrt (dot x x)

let add x y =
  check_same_dim x y;
  Array.mapi (fun i xi -> xi +. y.(i)) x

let sub x y =
  check_same_dim x y;
  Array.mapi (fun i xi -> xi -. y.(i)) x

let scale alpha x = Array.map (fun xi -> alpha *. xi) x

let axpy ~alpha x y =
  check_same_dim x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

let max_abs_diff x y =
  check_same_dim x y;
  let m = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    m := Float.max !m (Float.abs (x.(i) -. y.(i)))
  done;
  !m

let linspace lo hi n =
  if n < 2 then invalid_arg "Vector.linspace: need at least two points";
  let step = (hi -. lo) /. float_of_int (n - 1) in
  Array.init n (fun i ->
      if i = n - 1 then hi else lo +. (float_of_int i *. step))
