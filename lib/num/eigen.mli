(** Symmetric eigendecomposition by the cyclic Jacobi method.

    Needed for the principal-component decomposition of gridded
    process-variation covariance matrices (the Chang–Sapatnekar baseline
    models channel length over die regions as a linear combination of
    independent principal components).  Jacobi is slow for very large
    matrices but unconditionally robust and accurate for the few-hundred
    dimensional covariance matrices that arise here. *)

type decomposition = {
  eigenvalues : float array;  (** descending order *)
  eigenvectors : Matrix.t;
      (** column [j] is the unit eigenvector of [eigenvalues.(j)] *)
}

val symmetric : ?max_sweeps:int -> ?tol:float -> Matrix.t -> decomposition
(** Decomposes a symmetric matrix ([a = V diag(λ) Vᵀ]).  Raises
    [Invalid_argument] on non-square or (beyond [tol], default 1e-9
    relative) non-symmetric input; fails with [Failure] if the
    off-diagonal mass has not vanished after [max_sweeps] (default 64)
    sweeps, which does not happen for symmetric input in practice. *)

val reconstruct : decomposition -> Matrix.t
(** [V diag(λ) Vᵀ], for testing. *)

val principal_components :
  ?variance_fraction:float -> decomposition -> int
(** Number of leading components needed to capture the given fraction
    (default 0.999) of the total variance (sum of positive
    eigenvalues). *)
