type decomposition = { eigenvalues : float array; eigenvectors : Matrix.t }

let symmetric ?(max_sweeps = 64) ?(tol = 1e-9) a =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Eigen.symmetric: matrix must be square";
  if not (Matrix.is_symmetric ~tol:(tol *. 100.0) a) then
    invalid_arg "Eigen.symmetric: matrix must be symmetric";
  (* Work on a mutable copy; accumulate rotations into v. *)
  let m = Matrix.to_arrays a in
  let v = Matrix.to_arrays (Matrix.identity n) in
  let off_norm () =
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        s := !s +. (m.(i).(j) *. m.(i).(j))
      done
    done;
    sqrt !s
  in
  let scale =
    let s = ref 1e-300 in
    for i = 0 to n - 1 do
      s := Float.max !s (Float.abs m.(i).(i))
    done;
    !s
  in
  let sweeps = ref 0 in
  while off_norm () > 1e-12 *. scale *. float_of_int n && !sweeps < max_sweeps do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = m.(p).(q) in
        if Float.abs apq > 1e-300 then begin
          let app = m.(p).(p) and aqq = m.(q).(q) in
          let theta = (aqq -. app) /. (2.0 *. apq) in
          let t =
            let sign = if theta >= 0.0 then 1.0 else -1.0 in
            sign /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.0))
          in
          let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
          let s = t *. c in
          (* rotate rows/columns p and q *)
          for k = 0 to n - 1 do
            let akp = m.(k).(p) and akq = m.(k).(q) in
            m.(k).(p) <- (c *. akp) -. (s *. akq);
            m.(k).(q) <- (s *. akp) +. (c *. akq)
          done;
          for k = 0 to n - 1 do
            let apk = m.(p).(k) and aqk = m.(q).(k) in
            m.(p).(k) <- (c *. apk) -. (s *. aqk);
            m.(q).(k) <- (s *. apk) +. (c *. aqk)
          done;
          for k = 0 to n - 1 do
            let vkp = v.(k).(p) and vkq = v.(k).(q) in
            v.(k).(p) <- (c *. vkp) -. (s *. vkq);
            v.(k).(q) <- (s *. vkp) +. (c *. vkq)
          done
        end
      done
    done
  done;
  if !sweeps >= max_sweeps && off_norm () > 1e-8 *. scale *. float_of_int n then
    failwith "Eigen.symmetric: Jacobi did not converge";
  (* sort descending by eigenvalue *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare m.(j).(j) m.(i).(i)) order;
  let eigenvalues = Array.map (fun i -> m.(i).(i)) order in
  let eigenvectors =
    Matrix.init ~rows:n ~cols:n (fun r c -> v.(r).(order.(c)))
  in
  { eigenvalues; eigenvectors }

let reconstruct d =
  let n = Array.length d.eigenvalues in
  let lambda =
    Matrix.init ~rows:n ~cols:n (fun i j ->
        if i = j then d.eigenvalues.(i) else 0.0)
  in
  Matrix.mul d.eigenvectors (Matrix.mul lambda (Matrix.transpose d.eigenvectors))

let principal_components ?(variance_fraction = 0.999) d =
  if not (variance_fraction > 0.0 && variance_fraction <= 1.0) then
    invalid_arg "Eigen.principal_components: fraction out of (0,1]";
  let total =
    Array.fold_left (fun acc l -> if l > 0.0 then acc +. l else acc) 0.0
      d.eigenvalues
  in
  if total = 0.0 then 0
  else begin
    let rec go i acc =
      if i >= Array.length d.eigenvalues || d.eigenvalues.(i) <= 0.0 then i
      else begin
        let acc = acc +. d.eigenvalues.(i) in
        if acc >= variance_fraction *. total then i + 1 else go (i + 1) acc
      end
    in
    go 0 0.0
  end
