(* Exporters.  All output is derived from a merged snapshot, so the
   formats here never touch the per-domain buffers. *)

let ns_to_s ns = Int64.to_float ns /. 1e9
let ns_to_us ns = Int64.to_float ns /. 1e3

(* Span paths and metric names are code-controlled, but escape anyway
   so the emitted JSON is valid for any input. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let last_segment path =
  match String.rindex_opt path '/' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

let path_depth path =
  String.fold_left (fun d c -> if c = '/' then d + 1 else d) 0 path

(* Aggregate spans by full path, keeping (count, total_ns); sorted by
   path, which interleaves children directly under their parents. *)
let aggregate_spans (s : Obs.snapshot) =
  let tbl : (string, int ref * int64 ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (e : Obs.span_event) ->
      match Hashtbl.find_opt tbl e.Obs.path with
      | Some (n, total) ->
        incr n;
        total := Int64.add !total e.Obs.dur_ns
      | None -> Hashtbl.add tbl e.Obs.path (ref 1, ref e.Obs.dur_ns))
    s.Obs.spans;
  Hashtbl.fold (fun path (n, total) acc -> (path, !n, !total) :: acc) tbl []
  |> List.sort compare

(* ---------- human-readable report ---------- *)

let report oc (s : Obs.snapshot) =
  let p fmt = Printf.fprintf oc fmt in
  p "== telemetry (%.3f s window) ==\n" (ns_to_s s.Obs.elapsed_ns);
  let aggs = aggregate_spans s in
  if aggs <> [] then begin
    p "-- spans %-30s %8s %12s %12s\n" "" "count" "total s" "mean ms";
    List.iter
      (fun (path, n, total) ->
        let indent = String.make (2 * path_depth path) ' ' in
        p "   %-39s %8d %12.6f %12.4f\n"
          (indent ^ last_segment path)
          n (ns_to_s total)
          (ns_to_s total *. 1e3 /. float_of_int n))
      aggs
  end;
  if s.Obs.counters <> [] then begin
    p "-- counters\n";
    List.iter (fun (name, v) -> p "   %-42s %14d\n" name v) s.Obs.counters
  end;
  if s.Obs.gauges <> [] then begin
    p "-- gauges\n";
    List.iter (fun (name, v) -> p "   %-42s %14.6f\n" name v) s.Obs.gauges
  end;
  if s.Obs.dropped_spans > 0 then
    p "-- dropped spans: %d (per-domain cap)\n" s.Obs.dropped_spans;
  flush oc

(* ---------- Chrome trace events ---------- *)

let chrome_trace (s : Obs.snapshot) =
  let b = Buffer.create 4096 in
  let sep = ref "" in
  let event fmt =
    Buffer.add_string b !sep;
    sep := ",\n";
    Printf.ksprintf (Buffer.add_string b) fmt
  in
  Buffer.add_string b "{\"traceEvents\":[\n";
  event
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"rgleak\"}}";
  let domains =
    List.sort_uniq compare
      (List.map (fun (e : Obs.span_event) -> e.Obs.domain) s.Obs.spans)
  in
  List.iter
    (fun d ->
      event
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"domain-%d\"}}"
        d d)
    domains;
  List.iter
    (fun (e : Obs.span_event) ->
      event
        "{\"name\":\"%s\",\"cat\":\"rgleak\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"path\":\"%s\"}}"
        (json_escape (last_segment e.Obs.path))
        e.Obs.domain (ns_to_us e.Obs.start_ns) (ns_to_us e.Obs.dur_ns)
        (json_escape e.Obs.path))
    s.Obs.spans;
  (* Pool utilization and work counters as Chrome counter events. *)
  let ts_end = ns_to_us s.Obs.elapsed_ns in
  List.iter
    (fun (name, v) ->
      event
        "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":%.3f,\"args\":{\"value\":%.9g}}"
        (json_escape name) ts_end v)
    s.Obs.gauges;
  List.iter
    (fun (name, v) ->
      event
        "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":%.3f,\"args\":{\"value\":%d}}"
        (json_escape name) ts_end v)
    s.Obs.counters;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

(* ---------- flat metrics ---------- *)

let metrics_json (s : Obs.snapshot) =
  let b = Buffer.create 2048 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  p "{\n";
  p "  \"schema\": \"rgleak-metrics/1\",\n";
  p "  \"elapsed_s\": %.9f,\n" (ns_to_s s.Obs.elapsed_ns);
  p "  \"dropped_spans\": %d,\n" s.Obs.dropped_spans;
  let obj last items print_one =
    List.iteri
      (fun i item ->
        print_one item;
        p "%s\n" (if i = List.length items - 1 then "" else ","))
      items;
    ignore last
  in
  p "  \"counters\": {\n";
  obj () s.Obs.counters (fun (name, v) ->
      p "    \"%s\": %d" (json_escape name) v);
  p "  },\n";
  p "  \"gauges\": {\n";
  obj () s.Obs.gauges (fun (name, v) ->
      p "    \"%s\": %.9g" (json_escape name) v);
  p "  },\n";
  p "  \"spans\": [\n";
  obj () (aggregate_spans s) (fun (path, n, total) ->
      p "    { \"path\": \"%s\", \"count\": %d, \"total_s\": %.9f }"
        (json_escape path) n (ns_to_s total));
  p "  ]\n";
  p "}\n";
  Buffer.contents b

let write_file ~path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_chrome_trace ~path s = write_file ~path (chrome_trace s)
let write_metrics_json ~path s = write_file ~path (metrics_json s)
