(* Exporters.  All output is derived from a merged snapshot, so the
   formats here never touch the per-domain buffers. *)

let ns_to_s ns = Int64.to_float ns /. 1e9
let ns_to_us ns = Int64.to_float ns /. 1e3

(* Span paths and metric names are code-controlled, but escape anyway
   so the emitted JSON is valid for any input. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let last_segment path =
  match String.rindex_opt path '/' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

let parent_path path =
  match String.rindex_opt path '/' with
  | None -> None
  | Some i -> Some (String.sub path 0 i)

let path_depth path =
  String.fold_left (fun d c -> if c = '/' then d + 1 else d) 0 path

(* Aggregate spans by full path, keeping (count, total_ns, minor_words);
   sorted by path, which interleaves children directly under their
   parents. *)
let aggregate_spans (s : Obs.snapshot) =
  let tbl : (string, int ref * int64 ref * float ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (e : Obs.span_event) ->
      match Hashtbl.find_opt tbl e.Obs.path with
      | Some (n, total, mw) ->
        incr n;
        total := Int64.add !total e.Obs.dur_ns;
        mw := !mw +. e.Obs.minor_words
      | None ->
        Hashtbl.add tbl e.Obs.path
          (ref 1, ref e.Obs.dur_ns, ref e.Obs.minor_words))
    s.Obs.spans;
  Hashtbl.fold (fun path (n, total, mw) acc -> (path, !n, !total, !mw) :: acc) tbl []
  |> List.sort compare

(* Self time per path: total minus the total of direct children.
   Pool-task spans attach under their submitter's path but may run
   concurrently on other domains, so a parent's children can sum to
   more than the parent — clamp at zero rather than report negative
   self time. *)
let self_times (s : Obs.snapshot) =
  let aggs = aggregate_spans s in
  let child_total : (string, int64 ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (path, _, total, _) ->
      match parent_path path with
      | None -> ()
      | Some parent -> (
        match Hashtbl.find_opt child_total parent with
        | Some r -> r := Int64.add !r total
        | None -> Hashtbl.add child_total parent (ref total)))
    aggs;
  List.map
    (fun (path, n, total, mw) ->
      let children =
        match Hashtbl.find_opt child_total path with
        | Some r -> !r
        | None -> 0L
      in
      let self = Int64.sub total children in
      let self = if Int64.compare self 0L < 0 then 0L else self in
      (path, n, total, self, mw))
    aggs

(* ---------- human-readable report ---------- *)

let hist_summary (h : Obs.hist) =
  ( h.Obs.h_count,
    Obs.hist_quantile h 0.50,
    Obs.hist_quantile h 0.90,
    Obs.hist_quantile h 0.99,
    h.Obs.h_max )

let report oc (s : Obs.snapshot) =
  let p fmt = Printf.fprintf oc fmt in
  p "== telemetry (%.3f s window) ==\n" (ns_to_s s.Obs.elapsed_ns);
  let selfs = self_times s in
  if selfs <> [] then begin
    p "-- spans %-30s %8s %12s %12s %12s\n" "" "count" "total s" "self s"
      "mean ms";
    List.iter
      (fun (path, n, total, self, _) ->
        let indent = String.make (2 * path_depth path) ' ' in
        p "   %-39s %8d %12.6f %12.6f %12.4f\n"
          (indent ^ last_segment path)
          n (ns_to_s total) (ns_to_s self)
          (ns_to_s total *. 1e3 /. float_of_int n))
      selfs
  end;
  if s.Obs.hists <> [] then begin
    p "-- hists %-27s %8s %10s %10s %10s %10s\n" "" "count" "p50" "p90" "p99"
      "max";
    List.iter
      (fun (name, h) ->
        let n, p50, p90, p99, mx = hist_summary h in
        p "   %-36s %8d %10.3g %10.3g %10.3g %10.3g\n" name n p50 p90 p99 mx)
      s.Obs.hists
  end;
  if s.Obs.counters <> [] then begin
    p "-- counters\n";
    List.iter (fun (name, v) -> p "   %-42s %14d\n" name v) s.Obs.counters
  end;
  if s.Obs.gauges <> [] then begin
    p "-- gauges\n";
    List.iter (fun (name, v) -> p "   %-42s %14.6f\n" name v) s.Obs.gauges
  end;
  if s.Obs.gc_minor_words > 0.0 || s.Obs.gc_major_words > 0.0 then
    p "-- gc: %.0f minor words, %.0f major words (over root spans)\n"
      s.Obs.gc_minor_words s.Obs.gc_major_words;
  if s.Obs.dropped_spans > 0 then
    p "-- dropped spans: %d (per-domain cap)\n" s.Obs.dropped_spans;
  if s.Obs.dropped_tracks > 0 then
    p "-- dropped track samples: %d (per-domain cap)\n" s.Obs.dropped_tracks;
  flush oc

(* ---------- Chrome trace events ---------- *)

let chrome_trace (s : Obs.snapshot) =
  let b = Buffer.create 4096 in
  let sep = ref "" in
  let event fmt =
    Buffer.add_string b !sep;
    sep := ",\n";
    Printf.ksprintf (Buffer.add_string b) fmt
  in
  Buffer.add_string b "{\"traceEvents\":[\n";
  event
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"rgleak\"}}";
  let domains =
    List.sort_uniq compare
      (List.map (fun (e : Obs.span_event) -> e.Obs.domain) s.Obs.spans)
  in
  List.iter
    (fun d ->
      event
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"domain-%d\"}}"
        d d)
    domains;
  List.iter
    (fun (e : Obs.span_event) ->
      event
        "{\"name\":\"%s\",\"cat\":\"rgleak\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"path\":\"%s\",\"minor_words\":%.9g}}"
        (json_escape (last_segment e.Obs.path))
        e.Obs.domain (ns_to_us e.Obs.start_ns) (ns_to_us e.Obs.dur_ns)
        (json_escape e.Obs.path) e.Obs.minor_words)
    s.Obs.spans;
  (* Time-stamped counter tracks (cache hits/misses, queue depth...):
     one "C" event per recorded sample so they render as timelines. *)
  List.iter
    (fun (t : Obs.track_event) ->
      event
        "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":%.3f,\"args\":{\"value\":%.9g}}"
        (json_escape t.Obs.t_name) (ns_to_us t.Obs.t_ns) t.Obs.t_value)
    s.Obs.tracks;
  (* Pool utilization and work counters as final-total counter events. *)
  let ts_end = ns_to_us s.Obs.elapsed_ns in
  List.iter
    (fun (name, v) ->
      event
        "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":%.3f,\"args\":{\"value\":%.9g}}"
        (json_escape name) ts_end v)
    s.Obs.gauges;
  List.iter
    (fun (name, v) ->
      event
        "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":%.3f,\"args\":{\"value\":%d}}"
        (json_escape name) ts_end v)
    s.Obs.counters;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

(* ---------- collapsed stacks (flamegraph.pl / speedscope) ---------- *)

(* Frames may not contain the separator or spaces in the folded
   format; metric names are code-controlled but sanitize anyway. *)
let folded_frame seg =
  String.map (fun c -> match c with ';' -> ':' | ' ' -> '_' | c -> c) seg

let folded (s : Obs.snapshot) =
  let b = Buffer.create 2048 in
  List.iter
    (fun (path, _, _, self, _) ->
      let us = Int64.to_float self /. 1e3 in
      let us = int_of_float (Float.round us) in
      if us > 0 then begin
        let frames = String.split_on_char '/' path in
        Buffer.add_string b
          (String.concat ";" (List.map folded_frame frames));
        Buffer.add_char b ' ';
        Buffer.add_string b (string_of_int us);
        Buffer.add_char b '\n'
      end)
    (self_times s);
  Buffer.contents b

(* ---------- flat metrics ---------- *)

(* Schema history: rgleak-metrics/1 (PR 2) had elapsed_s /
   dropped_spans / counters / gauges / spans.  Version 2 keeps every
   v1 field with the same shape (v1 consumers that tolerate unknown
   keys keep working) and adds "hists", "gc", "dropped_tracks", and a
   "self_s" field on span aggregates. *)
let metrics_json (s : Obs.snapshot) =
  let b = Buffer.create 2048 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  p "{\n";
  p "  \"schema\": \"rgleak-metrics/2\",\n";
  p "  \"elapsed_s\": %.9f,\n" (ns_to_s s.Obs.elapsed_ns);
  p "  \"dropped_spans\": %d,\n" s.Obs.dropped_spans;
  p "  \"dropped_tracks\": %d,\n" s.Obs.dropped_tracks;
  let obj last items print_one =
    List.iteri
      (fun i item ->
        print_one item;
        p "%s\n" (if i = List.length items - 1 then "" else ","))
      items;
    ignore last
  in
  p "  \"counters\": {\n";
  obj () s.Obs.counters (fun (name, v) ->
      p "    \"%s\": %d" (json_escape name) v);
  p "  },\n";
  p "  \"gauges\": {\n";
  obj () s.Obs.gauges (fun (name, v) ->
      p "    \"%s\": %.9g" (json_escape name) v);
  p "  },\n";
  p "  \"hists\": {\n";
  obj () s.Obs.hists (fun (name, h) ->
      let n, p50, p90, p99, mx = hist_summary h in
      p "    \"%s\": { \"count\": %d, \"sum\": %.9g, \"min\": %.9g,\n"
        (json_escape name) n h.Obs.h_sum h.Obs.h_min;
      p "      \"p50\": %.9g, \"p90\": %.9g, \"p99\": %.9g, \"max\": %.9g,\n"
        p50 p90 p99 mx;
      p "      \"buckets\": { %s } }"
        (String.concat ", "
           (List.map
              (fun (i, c) -> Printf.sprintf "\"%d\": %d" i c)
              h.Obs.h_buckets)));
  p "  },\n";
  p "  \"gc\": { \"minor_words\": %.9g, \"major_words\": %.9g },\n"
    s.Obs.gc_minor_words s.Obs.gc_major_words;
  p "  \"spans\": [\n";
  obj () (self_times s) (fun (path, n, total, self, mw) ->
      p
        "    { \"path\": \"%s\", \"count\": %d, \"total_s\": %.9f, \
         \"self_s\": %.9f, \"minor_words\": %.9g }"
        (json_escape path) n (ns_to_s total) (ns_to_s self) mw);
  p "  ]\n";
  p "}\n";
  Buffer.contents b

let write_file ~path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_chrome_trace ~path s = write_file ~path (chrome_trace s)
let write_metrics_json ~path s = write_file ~path (metrics_json s)
let write_folded ~path s = write_file ~path (folded s)
