(** Persistent run ledger: appends one compact ["rgleak-run/1"] JSON
    line per CLI run to a shared JSONL file (default
    [.rgleak/ledger.jsonl]).

    Each record carries the subcommand, an MD5 digest of the canonical
    argument vector, schema versions, the run's exit class ("ok", a
    {!Rgleak_num.Guard} diagnostic class, or "error"), elapsed wall
    time, merged counters and gauges, histogram summaries
    (count/sum/min/max, p50/p90/p99) {e plus} the sparse bucket
    counts — so a reader can re-aggregate quantiles exactly across
    runs — and GC totals.

    Appends are crash- and concurrency-safe: the file is opened with
    [O_APPEND] and the whole line is written in a single [write], so
    records from concurrent processes never interleave. *)

val schema : string
(** ["rgleak-run/1"]. *)

val default_path : string
(** [".rgleak/ledger.jsonl"]. *)

val args_digest : string list -> string
(** MD5 hex digest of the NUL-joined argument vector. *)

val line :
  subcommand:string ->
  args:string list ->
  exit_class:string ->
  ?t:float ->
  Obs.snapshot ->
  string
(** Renders one ledger record (no trailing newline).  [t] is a wall
    timestamp in epoch seconds (0 when not supplied, e.g. in
    deterministic fixtures). *)

val append : path:string -> string -> (unit, string) result
(** Appends [line ^ "\n"] to [path], creating parent directories as
    needed.  Errors are returned, not raised — a failed ledger write
    must never fail the run that produced it. *)
