/* Monotonic clock for span timing: CLOCK_MONOTONIC via clock_gettime,
   exposed both boxed (bytecode) and unboxed/noalloc (native). */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <stdint.h>
#include <time.h>

int64_t rgleak_obs_clock_ns_unboxed(value unit)
{
  struct timespec ts;
  (void) unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t) ts.tv_sec * 1000000000 + (int64_t) ts.tv_nsec;
}

CAMLprim value rgleak_obs_clock_ns(value unit)
{
  return caml_copy_int64(rgleak_obs_clock_ns_unboxed(unit));
}
