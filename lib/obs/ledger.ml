(* Persistent run ledger: one compact JSON line per CLI run, appended
   with O_APPEND so concurrent writers interleave whole lines.  The
   reader side (Rgleak_valid.Report) re-aggregates histograms exactly
   from the sparse bucket counts carried here. *)

let schema = "rgleak-run/1"
let default_path = ".rgleak/ledger.jsonl"

let args_digest args =
  (* Length-safe canonical form: arguments joined on NUL can never
     collide across different splits. *)
  Digest.to_hex (Digest.string (String.concat "\x00" args))

let line ~subcommand ~args ~exit_class ?(t = 0.0) (s : Obs.snapshot) =
  let b = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let obj items print_one =
    List.iteri
      (fun i item ->
        if i > 0 then p ",";
        print_one item)
      items
  in
  p "{\"schema\":\"%s\"" schema;
  p ",\"t\":%.3f" t;
  p ",\"subcommand\":\"%s\"" (Export.json_escape subcommand);
  p ",\"args_digest\":\"%s\"" (args_digest args);
  p ",\"metrics_schema\":\"rgleak-metrics/2\"";
  p ",\"exit_class\":\"%s\"" (Export.json_escape exit_class);
  p ",\"elapsed_s\":%.9f" (Int64.to_float s.Obs.elapsed_ns /. 1e9);
  p ",\"counters\":{";
  obj s.Obs.counters (fun (name, v) ->
      p "\"%s\":%d" (Export.json_escape name) v);
  p "},\"gauges\":{";
  obj s.Obs.gauges (fun (name, v) ->
      p "\"%s\":%.9g" (Export.json_escape name) v);
  p "},\"hists\":{";
  obj s.Obs.hists (fun (name, h) ->
      p
        "\"%s\":{\"count\":%d,\"sum\":%.9g,\"min\":%.9g,\"max\":%.9g,\"p50\":%.9g,\"p90\":%.9g,\"p99\":%.9g,\"buckets\":{"
        (Export.json_escape name) h.Obs.h_count h.Obs.h_sum h.Obs.h_min
        h.Obs.h_max
        (Obs.hist_quantile h 0.50)
        (Obs.hist_quantile h 0.90)
        (Obs.hist_quantile h 0.99);
      obj h.Obs.h_buckets (fun (i, c) -> p "\"%d\":%d" i c);
      p "}}");
  p "},\"gc\":{\"minor_words\":%.9g,\"major_words\":%.9g}"
    s.Obs.gc_minor_words s.Obs.gc_major_words;
  p ",\"dropped_spans\":%d,\"dropped_tracks\":%d" s.Obs.dropped_spans
    s.Obs.dropped_tracks;
  p "}";
  Buffer.contents b

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let append ~path line =
  try
    mkdir_p (Filename.dirname path);
    let fd =
      Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
    in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        (* One write call for the whole record: O_APPEND makes the
           (offset choice + write) atomic, so concurrently appending
           processes can never interleave within a line. *)
        let data = Bytes.of_string (line ^ "\n") in
        let len = Bytes.length data in
        let n = Unix.write fd data 0 len in
        if n <> len then Error (Printf.sprintf "short write to %s" path)
        else Ok ())
  with
  | Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
  | Sys_error msg -> Error msg
