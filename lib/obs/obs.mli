(** Low-overhead, globally-toggleable telemetry core.

    The estimator pipeline is instrumented with {e spans} (nested
    monotonic-clock intervals), {e counters} (named integers counting
    work items), {e gauges} (named floats), {e histograms} (fixed
    log-bucketed latency/size distributions) and {e tracks}
    (time-stamped counter samples for timeline rendering).  All
    instrumentation is behind a single global switch: with telemetry
    disabled (the default) every call site reduces to one atomic load
    and a branch, so the hot loops pay well under 1% (see
    [bench --run overhead]).

    {b Storage model.}  Each domain records into its own local buffers
    (via [Domain.DLS]), registered once in a global list, so recording
    is lock-free after first touch and safe from pool workers.
    {!snapshot} merges the per-domain buffers deterministically:
    counters and sum-gauges by exact integer/float addition over
    domains in registration order, max-gauges by [max], histogram
    bucket counts by exact integer addition, spans and tracks by
    start-time order.

    {b Determinism contract.}  Telemetry never feeds back into any
    computation: enabling tracing leaves every estimator result
    bitwise unchanged.  Counters count {e work items} whose
    decomposition depends only on the problem size (chunk and band
    boundaries, like [Parallel] reductions), so merged counter values
    are bit-identical across job counts.  Histogram {e bucket counts}
    (and count/min/max) inherit the same contract whenever the
    recorded values themselves are jobs-invariant: bucketing is a pure
    function of the value and buckets merge by integer addition, so
    the merged histogram does not depend on which domain recorded
    which value.  Span durations, gauges, histogram float sums of
    wall-clock samples, and GC deltas are {e not} expected to be
    reproducible.

    {b Concurrency.}  Recording may happen from any domain.
    {!set_enabled}, {!reset} and {!snapshot} must be called from the
    orchestrating domain while no parallel section is in flight (the
    CLI and bench call sites all do). *)

val now_ns : unit -> int64
(** Monotonic clock ([CLOCK_MONOTONIC]), nanoseconds from an arbitrary
    origin.  Allocation-free in native code. *)

val set_enabled : bool -> unit
(** Flips the global telemetry switch.  Enabling also re-anchors the
    trace epoch if none is set. *)

val enabled : unit -> bool
(** True when telemetry is on.  Hot call sites may pre-guard composite
    instrumentation with this; the recording primitives below also
    check it themselves (and are no-ops when disabled). *)

val reset : unit -> unit
(** Clears all recorded spans, counters, gauges, histograms and tracks
    on every registered domain and re-anchors the trace epoch at
    [now_ns ()]. *)

val domain_slot : unit -> int
(** Dense id of the calling domain's telemetry buffer (registration
    order; 0 is whichever domain recorded first).  Used to key
    per-worker gauges and as the [tid] lane in Chrome traces. *)

(** {2 Recording} *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a named span.  Spans nest: the path
    of a span is [parent-path ^ "/" ^ name].  The span is closed (and
    recorded) even if [f] raises.  Each recorded span carries the
    domain-local [Gc.counters] minor/major-words delta over its body.
    When disabled this is exactly [f ()]. *)

val span_under : parent:string -> string -> (unit -> 'a) -> 'a
(** [span_under ~parent name f]: like {!span}, but when the calling
    domain has no open span, [parent] (a span path, possibly [""]) is
    used as the logical parent — this is how pool tasks attach to the
    submitting domain's span tree across domains. *)

val current_path : unit -> string
(** Path of the innermost open span on this domain ([""] outside any
    span).  Capture at submit time to pass to {!span_under}. *)

val count : string -> int -> unit
(** [count name n] adds [n] to the named counter on this domain. *)

val gauge_add : string -> float -> unit
(** [gauge_add name v] accumulates [v] into a sum-gauge (e.g. busy
    seconds). *)

val gauge_max : string -> float -> unit
(** [gauge_max name v] raises a max-gauge to at least [v] (e.g. peak
    queue depth). *)

val declare_hist : owner:string -> string -> unit
(** [declare_hist ~owner name] registers [name] as a histogram site
    published by [owner] (a module or subsystem tag).  Snapshots merge
    histograms across domains by name, so an accidental name reuse
    silently pools two unrelated distributions; declaring sites makes
    the collision loud instead.  Re-declaring with the same owner is a
    no-op; declaring a name another owner holds raises
    [Invalid_argument].  Declarations are process-global and survive
    {!reset}. *)

val hist_record : string -> float -> unit
(** [hist_record name v] adds one sample to the named histogram on
    this domain.  Values [<= 0] (and NaN) land in the underflow
    bucket; values beyond the top octave clamp into the overflow
    bucket.  Exact min/max are tracked alongside the buckets. *)

val hist_time : string -> (unit -> 'a) -> 'a
(** [hist_time name f] runs [f] and records its wall-clock duration in
    seconds into the named histogram (even if [f] raises).  When
    disabled this is exactly [f ()]. *)

val track : string -> float -> unit
(** [track name v] records a time-stamped sample of a counter-like
    quantity (queue depth, cumulative cache hits...).  Rendered as a
    ["ph":"C"] counter track by the Chrome exporter.  Samples beyond
    the per-domain cap are counted as dropped. *)

(** {2 Histogram layout}

    Shared fixed bucketing for every histogram: {!Hist.sub} geometric
    sub-buckets per power of two across octaves
    [2^(emin-1), 2^emax) (relative bucket width 1/sub, ~9% error at
    sub = 8), bucket [0] for underflow and a final overflow bucket.
    Boundaries are exact dyadic rationals, so bucket assignment is
    platform-independent and merged bucket counts are exact. *)
module Hist : sig
  val sub : int
  (** Sub-buckets per octave. *)

  val n_buckets : int
  (** Total bucket count including underflow and overflow. *)

  val overflow : int
  (** Index of the overflow bucket ([n_buckets - 1]). *)

  val bucket_of : float -> int
  (** Bucket index of a value. *)

  val bounds : int -> float * float
  (** [(lower, upper)] bound of a bucket; bucket [0] is
      [(neg_infinity, lowest)], the overflow bucket
      [(highest, infinity)]. *)
end

(** {2 Snapshots} *)

type span_event = {
  path : string;  (** full "/"-separated span path *)
  depth : int;  (** 0 for root spans *)
  start_ns : int64;  (** relative to the trace epoch *)
  dur_ns : int64;
  domain : int;  (** recording domain's {!domain_slot} *)
  minor_words : float;  (** domain-local minor allocation over the span *)
  major_words : float;  (** domain-local major allocation over the span *)
}

type track_event = {
  t_name : string;
  t_ns : int64;  (** relative to the trace epoch *)
  t_value : float;
  t_domain : int;
}

type hist = {
  h_count : int;  (** total samples *)
  h_sum : float;  (** sum of raw values (merge-order dependent) *)
  h_min : float;  (** exact minimum ([infinity] when empty) *)
  h_max : float;  (** exact maximum ([neg_infinity] when empty) *)
  h_buckets : (int * int) list;
      (** sparse nonzero (bucket index, count), sorted by index *)
}

val hist_quantile : hist -> float -> float
(** [hist_quantile h q] for [q] in [0, 1]: the upper bound of the
    bucket containing the rank-[ceil q*count] sample, clamped to the
    exact max (bucket resolution ~9%; underflow ranks report the exact
    min).  The rank product snaps to the nearest integer before the
    ceiling, so extreme quantiles (p999/p9999) hit their true rank
    instead of overshooting by one on float rounding.  NaN on an empty
    histogram.  Deterministic: a pure function of the bucket counts and
    min/max. *)

type snapshot = {
  elapsed_ns : int64;  (** epoch to snapshot time *)
  counters : (string * int) list;  (** merged, sorted by name *)
  gauges : (string * float) list;  (** merged sums and maxes, sorted *)
  hists : (string * hist) list;  (** merged histograms, sorted by name *)
  spans : span_event list;  (** sorted by (start, domain) *)
  tracks : track_event list;  (** sorted by (time, domain, name) *)
  dropped_spans : int;  (** spans lost to the per-domain cap *)
  dropped_tracks : int;  (** track samples lost to the per-domain cap *)
  gc_minor_words : float;  (** minor words over all depth-0 spans *)
  gc_major_words : float;  (** major words over all depth-0 spans *)
}

val snapshot : unit -> snapshot
(** Merges every domain's buffers into one deterministic view.  Does
    not clear anything; call {!reset} to start a fresh window. *)
