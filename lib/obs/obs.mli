(** Low-overhead, globally-toggleable telemetry core.

    The estimator pipeline is instrumented with {e spans} (nested
    monotonic-clock intervals), {e counters} (named integers counting
    work items) and {e gauges} (named floats).  All instrumentation is
    behind a single global switch: with telemetry disabled (the
    default) every call site reduces to one atomic load and a branch,
    so the hot loops pay well under 1% (see [bench --run overhead]).

    {b Storage model.}  Each domain records into its own local buffers
    (via [Domain.DLS]), registered once in a global list, so recording
    is lock-free after first touch and safe from pool workers.
    {!snapshot} merges the per-domain buffers deterministically:
    counters and sum-gauges by exact integer/float addition over
    domains in registration order, max-gauges by [max], spans by
    start-time order.

    {b Determinism contract.}  Telemetry never feeds back into any
    computation: enabling tracing leaves every estimator result
    bitwise unchanged.  Counters count {e work items} whose
    decomposition depends only on the problem size (chunk and band
    boundaries, like [Parallel] reductions), so merged counter values
    are bit-identical across job counts.  Span durations and gauges
    carry wall-clock time and are {e not} expected to be reproducible.

    {b Concurrency.}  Recording may happen from any domain.
    {!set_enabled}, {!reset} and {!snapshot} must be called from the
    orchestrating domain while no parallel section is in flight (the
    CLI and bench call sites all do). *)

val now_ns : unit -> int64
(** Monotonic clock ([CLOCK_MONOTONIC]), nanoseconds from an arbitrary
    origin.  Allocation-free in native code. *)

val set_enabled : bool -> unit
(** Flips the global telemetry switch.  Enabling also re-anchors the
    trace epoch if none is set. *)

val enabled : unit -> bool
(** True when telemetry is on.  Hot call sites may pre-guard composite
    instrumentation with this; the recording primitives below also
    check it themselves (and are no-ops when disabled). *)

val reset : unit -> unit
(** Clears all recorded spans, counters and gauges on every registered
    domain and re-anchors the trace epoch at [now_ns ()]. *)

val domain_slot : unit -> int
(** Dense id of the calling domain's telemetry buffer (registration
    order; 0 is whichever domain recorded first).  Used to key
    per-worker gauges and as the [tid] lane in Chrome traces. *)

(** {2 Recording} *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a named span.  Spans nest: the path
    of a span is [parent-path ^ "/" ^ name].  The span is closed (and
    recorded) even if [f] raises.  When disabled this is exactly
    [f ()]. *)

val span_under : parent:string -> string -> (unit -> 'a) -> 'a
(** [span_under ~parent name f]: like {!span}, but when the calling
    domain has no open span, [parent] (a span path, possibly [""]) is
    used as the logical parent — this is how pool tasks attach to the
    submitting domain's span tree across domains. *)

val current_path : unit -> string
(** Path of the innermost open span on this domain ([""] outside any
    span).  Capture at submit time to pass to {!span_under}. *)

val count : string -> int -> unit
(** [count name n] adds [n] to the named counter on this domain. *)

val gauge_add : string -> float -> unit
(** [gauge_add name v] accumulates [v] into a sum-gauge (e.g. busy
    seconds). *)

val gauge_max : string -> float -> unit
(** [gauge_max name v] raises a max-gauge to at least [v] (e.g. peak
    queue depth). *)

(** {2 Snapshots} *)

type span_event = {
  path : string;  (** full "/"-separated span path *)
  depth : int;  (** 0 for root spans *)
  start_ns : int64;  (** relative to the trace epoch *)
  dur_ns : int64;
  domain : int;  (** recording domain's {!domain_slot} *)
}

type snapshot = {
  elapsed_ns : int64;  (** epoch to snapshot time *)
  counters : (string * int) list;  (** merged, sorted by name *)
  gauges : (string * float) list;  (** merged sums and maxes, sorted *)
  spans : span_event list;  (** sorted by (start, domain) *)
  dropped_spans : int;  (** spans lost to the per-domain cap *)
}

val snapshot : unit -> snapshot
(** Merges every domain's buffers into one deterministic view.  Does
    not clear anything; call {!reset} to start a fresh window. *)
