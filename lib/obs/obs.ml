(* Telemetry core.  See the interface for the storage and determinism
   contracts.  The design constraint is the disabled path: one atomic
   load and a branch per call site, nothing else. *)

external now_ns : unit -> (int64[@unboxed])
  = "rgleak_obs_clock_ns" "rgleak_obs_clock_ns_unboxed"
[@@noalloc]

let enabled_flag = Atomic.make false
let epoch = Atomic.make 0L

let enabled () = Atomic.get enabled_flag

let set_enabled b =
  if b && Atomic.get epoch = 0L then Atomic.set epoch (now_ns ());
  Atomic.set enabled_flag b

type span_event = {
  path : string;
  depth : int;
  start_ns : int64;
  dur_ns : int64;
  domain : int;
  minor_words : float;
  major_words : float;
}

type track_event = {
  t_name : string;
  t_ns : int64;
  t_value : float;
  t_domain : int;
}

(* Raw per-domain record: timestamps are absolute until snapshot time. *)
type raw_span = {
  r_path : string;
  r_depth : int;
  r_t0 : int64;
  r_t1 : int64;
  r_minor : float;
  r_major : float;
}

type raw_track = { k_name : string; k_t : int64; k_value : float }

(* ---------- histogram bucketing ---------- *)

(* Fixed log-bucketed (HDR-style) layout shared by every histogram:
   [sub] geometric sub-buckets per power of two over octaves
   [2^(emin-1), 2^emax), plus an underflow bucket 0 (v <= 0 or below
   range) and a final overflow bucket.  Bucket boundaries are exact
   dyadic rationals ([ldexp] of small integers), and the index
   computation uses only exact float operations ([frexp], multiply by
   a power of two, floor), so any given value lands in the same bucket
   on every platform — bucket counts are integers and merge exactly. *)
module Hist = struct
  let sub = 8
  let emin = -40 (* lowest octave: [2^-41, 2^-40)  ~ 4.5e-13 .. 9.1e-13 *)
  let emax = 24 (* highest octave: [2^23, 2^24)   ~ 8.4e6 .. 1.7e7 *)
  let n_buckets = 2 + ((emax - emin + 1) * sub)
  let overflow = n_buckets - 1

  let bucket_of v =
    if not (v > 0.0) then 0 (* <= 0 and NaN *)
    else if v = Float.infinity then overflow (* frexp has no exponent here *)
    else begin
      let m, e = Float.frexp v in
      (* v = m * 2^e with m in [0.5, 1), i.e. v in [2^(e-1), 2^e). *)
      if e < emin then 0
      else if e > emax then overflow
      else begin
        (* m*2 - 1 in [0, 1); scaling by [sub] and flooring picks the
           geometric sub-bucket.  All steps are exact. *)
        let s = int_of_float ((m *. 2.0 -. 1.0) *. float_of_int sub) in
        let s = if s >= sub then sub - 1 else s in
        1 + ((e - emin) * sub) + s
      end
    end

  (* Lower/upper bound of a bucket.  Bucket 0 is (-inf, lowest); the
     overflow bucket is [highest, inf). *)
  let bounds i =
    if i <= 0 then (neg_infinity, Float.ldexp 1.0 (emin - 1))
    else if i >= overflow then (Float.ldexp 1.0 emax, infinity)
    else begin
      let o = ((i - 1) / sub) + emin in
      let s = (i - 1) mod sub in
      let lo = Float.ldexp (1.0 +. (float_of_int s /. float_of_int sub)) (o - 1) in
      let hi =
        Float.ldexp (1.0 +. (float_of_int (s + 1) /. float_of_int sub)) (o - 1)
      in
      (lo, hi)
    end
end

type hist = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (int * int) list; (* sparse nonzero buckets, by index *)
}

let hist_quantile h q =
  if h.h_count <= 0 then Float.nan
  else begin
    let rank =
      (* ceil(q·count), but snap near-integer products first: 0.9999 ·
         10000 rounds to 9999.000000000000002 in binary, and a bare
         ceil would inflate the rank to 10000 — at extreme quantiles
         that skips the correct bucket and always reports the max. *)
      let t = q *. float_of_int h.h_count in
      let nearest = Float.round t in
      let r =
        if Float.abs (t -. nearest) <= 1e-9 *. Float.max 1.0 nearest then
          int_of_float nearest
        else int_of_float (Float.ceil t)
      in
      if r < 1 then 1 else if r > h.h_count then h.h_count else r
    in
    let rec walk cum = function
      | [] -> h.h_max
      | (i, c) :: tl ->
        let cum = cum + c in
        if cum >= rank then begin
          if i = 0 then h.h_min
          else if i >= Hist.overflow then h.h_max
          else begin
            let _, hi = Hist.bounds i in
            Float.min hi h.h_max
          end
        end
        else walk cum tl
    in
    walk 0 h.h_buckets
  end

(* Per-domain mutable histogram. *)
type hrec = {
  buckets : int array;
  mutable c_count : int;
  mutable c_sum : float;
  mutable c_min : float;
  mutable c_max : float;
}

type local = {
  slot : int;
  mutable stack : string list; (* open span paths, innermost first *)
  mutable spans : raw_span list; (* newest first *)
  mutable span_count : int;
  mutable dropped : int;
  mutable tracks : raw_track list; (* newest first *)
  mutable track_count : int;
  mutable dropped_tracks : int;
  counters : (string, int ref) Hashtbl.t;
  sums : (string, float ref) Hashtbl.t;
  maxes : (string, float ref) Hashtbl.t;
  hists : (string, hrec) Hashtbl.t;
}

(* A domain holds at most this many spans; beyond it we count drops so
   runaway instrumentation degrades gracefully instead of OOMing. *)
let max_spans_per_domain = 1 lsl 18

(* Counter-track samples are denser than spans in steady state but
   much smaller; cap them separately. *)
let max_tracks_per_domain = 1 lsl 16

let registry : local list ref = ref []
let registry_mutex = Mutex.create ()
let next_slot = Atomic.make 0

(* ---------- histogram site registry ----------

   Histogram names are flat strings merged across domains by name, so
   two subsystems picking the same name silently pool their samples
   into one distribution.  Sites that publish a histogram declare it
   once with an owner tag; a second declaration by a different owner is
   a programming error and fails loudly at module init.  Declarations
   survive [reset]: ownership is static, samples are not. *)

let hist_sites : (string, string) Hashtbl.t = Hashtbl.create 16
let hist_sites_mutex = Mutex.create ()

let declare_hist ~owner name =
  Mutex.lock hist_sites_mutex;
  let prev = Hashtbl.find_opt hist_sites name in
  if prev = None then Hashtbl.replace hist_sites name owner;
  Mutex.unlock hist_sites_mutex;
  match prev with
  | None -> ()
  | Some other when String.equal other owner -> ()
  | Some other ->
    invalid_arg
      (Printf.sprintf
         "Obs.declare_hist: histogram site %S already owned by %S \
          (requested by %S)"
         name other owner)

let make_local () =
  let l =
    {
      slot = Atomic.fetch_and_add next_slot 1;
      stack = [];
      spans = [];
      span_count = 0;
      dropped = 0;
      tracks = [];
      track_count = 0;
      dropped_tracks = 0;
      counters = Hashtbl.create 32;
      sums = Hashtbl.create 16;
      maxes = Hashtbl.create 8;
      hists = Hashtbl.create 8;
    }
  in
  Mutex.lock registry_mutex;
  registry := l :: !registry;
  Mutex.unlock registry_mutex;
  l

let key = Domain.DLS.new_key make_local
let local () = Domain.DLS.get key
let domain_slot () = (local ()).slot

let reset () =
  Mutex.lock registry_mutex;
  let locals = !registry in
  Mutex.unlock registry_mutex;
  List.iter
    (fun l ->
      l.stack <- [];
      l.spans <- [];
      l.span_count <- 0;
      l.dropped <- 0;
      l.tracks <- [];
      l.track_count <- 0;
      l.dropped_tracks <- 0;
      Hashtbl.reset l.counters;
      Hashtbl.reset l.sums;
      Hashtbl.reset l.maxes;
      Hashtbl.reset l.hists)
    locals;
  Atomic.set epoch (now_ns ())

(* ---------- recording ---------- *)

let record_span l ~path ~depth ~t0 ~t1 ~minor ~major =
  if l.span_count >= max_spans_per_domain then l.dropped <- l.dropped + 1
  else begin
    l.spans <-
      {
        r_path = path;
        r_depth = depth;
        r_t0 = t0;
        r_t1 = t1;
        r_minor = minor;
        r_major = major;
      }
      :: l.spans;
    l.span_count <- l.span_count + 1
  end

let run_span l path f =
  let depth = List.length l.stack in
  l.stack <- path :: l.stack;
  (* [Gc.counters] reads this domain's allocation counters; the delta
     over the span body makes allocation hot spots visible next to
     wall time.  Enabled-only, so the disabled path is untouched. *)
  let m0, _, j0 = Gc.counters () in
  let t0 = now_ns () in
  Fun.protect
    ~finally:(fun () ->
      let t1 = now_ns () in
      let m1, _, j1 = Gc.counters () in
      (match l.stack with _ :: tl -> l.stack <- tl | [] -> ());
      record_span l ~path ~depth ~t0 ~t1 ~minor:(m1 -. m0) ~major:(j1 -. j0))
    f

let span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let l = local () in
    let path =
      match l.stack with [] -> name | parent :: _ -> parent ^ "/" ^ name
    in
    run_span l path f
  end

let span_under ~parent name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let l = local () in
    let path =
      match l.stack with
      | inner :: _ -> inner ^ "/" ^ name
      | [] -> if parent = "" then name else parent ^ "/" ^ name
    in
    run_span l path f
  end

let current_path () =
  if not (Atomic.get enabled_flag) then ""
  else match (local ()).stack with [] -> "" | p :: _ -> p

let count name n =
  if Atomic.get enabled_flag then begin
    let l = local () in
    match Hashtbl.find_opt l.counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.add l.counters name (ref n)
  end

let gauge_add name v =
  if Atomic.get enabled_flag then begin
    let l = local () in
    match Hashtbl.find_opt l.sums name with
    | Some r -> r := !r +. v
    | None -> Hashtbl.add l.sums name (ref v)
  end

let gauge_max name v =
  if Atomic.get enabled_flag then begin
    let l = local () in
    match Hashtbl.find_opt l.maxes name with
    | Some r -> if v > !r then r := v
    | None -> Hashtbl.add l.maxes name (ref v)
  end

let hist_record name v =
  if Atomic.get enabled_flag then begin
    let l = local () in
    let h =
      match Hashtbl.find_opt l.hists name with
      | Some h -> h
      | None ->
        let h =
          {
            buckets = Array.make Hist.n_buckets 0;
            c_count = 0;
            c_sum = 0.0;
            c_min = infinity;
            c_max = neg_infinity;
          }
        in
        Hashtbl.add l.hists name h;
        h
    in
    let i = Hist.bucket_of v in
    h.buckets.(i) <- h.buckets.(i) + 1;
    h.c_count <- h.c_count + 1;
    h.c_sum <- h.c_sum +. v;
    if v < h.c_min then h.c_min <- v;
    if v > h.c_max then h.c_max <- v
  end

let hist_time name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dt = Int64.to_float (Int64.sub (now_ns ()) t0) *. 1e-9 in
        hist_record name dt)
      f
  end

let track name v =
  if Atomic.get enabled_flag then begin
    let l = local () in
    if l.track_count >= max_tracks_per_domain then
      l.dropped_tracks <- l.dropped_tracks + 1
    else begin
      l.tracks <- { k_name = name; k_t = now_ns (); k_value = v } :: l.tracks;
      l.track_count <- l.track_count + 1
    end
  end

(* ---------- snapshot ---------- *)

type snapshot = {
  elapsed_ns : int64;
  counters : (string * int) list;
  gauges : (string * float) list;
  hists : (string * hist) list;
  spans : span_event list;
  tracks : track_event list;
  dropped_spans : int;
  dropped_tracks : int;
  gc_minor_words : float;
  gc_major_words : float;
}

let snapshot () =
  Mutex.lock registry_mutex;
  let locals = !registry in
  Mutex.unlock registry_mutex;
  (* Registration order (slot) fixes the merge order, mirroring the
     chunk-order reductions of the parallel runtime. *)
  let locals = List.sort (fun a b -> compare a.slot b.slot) locals in
  let t_now = now_ns () in
  let t0 = Atomic.get epoch in
  let t0 = if t0 = 0L then t_now else t0 in
  let merged_counters : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let merged_gauges : (string, float) Hashtbl.t = Hashtbl.create 32 in
  let merged_hists : (string, hrec) Hashtbl.t = Hashtbl.create 16 in
  let dropped = ref 0 in
  let dropped_tracks = ref 0 in
  let spans = ref [] in
  let tracks = ref [] in
  let gc_minor = ref 0.0 in
  let gc_major = ref 0.0 in
  List.iter
    (fun l ->
      dropped := !dropped + l.dropped;
      dropped_tracks := !dropped_tracks + l.dropped_tracks;
      Hashtbl.iter
        (fun name r ->
          let prev = Option.value ~default:0 (Hashtbl.find_opt merged_counters name) in
          Hashtbl.replace merged_counters name (prev + !r))
        l.counters;
      Hashtbl.iter
        (fun name r ->
          let prev =
            Option.value ~default:0.0 (Hashtbl.find_opt merged_gauges name)
          in
          Hashtbl.replace merged_gauges name (prev +. !r))
        l.sums;
      Hashtbl.iter
        (fun name r ->
          let v =
            match Hashtbl.find_opt merged_gauges name with
            | Some prev -> Float.max prev !r
            | None -> !r
          in
          Hashtbl.replace merged_gauges name v)
        l.maxes;
      Hashtbl.iter
        (fun name h ->
          match Hashtbl.find_opt merged_hists name with
          | None ->
            Hashtbl.add merged_hists name
              {
                buckets = Array.copy h.buckets;
                c_count = h.c_count;
                c_sum = h.c_sum;
                c_min = h.c_min;
                c_max = h.c_max;
              }
          | Some m ->
            (* Bucket counts add exactly (integers), so the merged
               histogram is invariant under any redistribution of the
               same recorded values across domains.  The float sum
               merges in slot order; like gauges it is not promised
               jobs-invariant. *)
            Array.iteri (fun i c -> m.buckets.(i) <- m.buckets.(i) + c) h.buckets;
            m.c_count <- m.c_count + h.c_count;
            m.c_sum <- m.c_sum +. h.c_sum;
            if h.c_min < m.c_min then m.c_min <- h.c_min;
            if h.c_max > m.c_max then m.c_max <- h.c_max)
        l.hists;
      List.iter
        (fun r ->
          (* Depth-0 spans on each domain are disjoint in time, so
             summing their GC deltas totals instrumented allocation
             without double counting nested spans. *)
          if r.r_depth = 0 then begin
            gc_minor := !gc_minor +. r.r_minor;
            gc_major := !gc_major +. r.r_major
          end;
          spans :=
            {
              path = r.r_path;
              depth = r.r_depth;
              start_ns = Int64.sub r.r_t0 t0;
              dur_ns = Int64.sub r.r_t1 r.r_t0;
              domain = l.slot;
              minor_words = r.r_minor;
              major_words = r.r_major;
            }
            :: !spans)
        l.spans;
      List.iter
        (fun k ->
          tracks :=
            {
              t_name = k.k_name;
              t_ns = Int64.sub k.k_t t0;
              t_value = k.k_value;
              t_domain = l.slot;
            }
            :: !tracks)
        l.tracks)
    locals;
  let assoc_sorted tbl =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  let hists =
    Hashtbl.fold
      (fun name h acc ->
        let sparse = ref [] in
        for i = Array.length h.buckets - 1 downto 0 do
          if h.buckets.(i) > 0 then sparse := (i, h.buckets.(i)) :: !sparse
        done;
        ( name,
          {
            h_count = h.c_count;
            h_sum = h.c_sum;
            h_min = h.c_min;
            h_max = h.c_max;
            h_buckets = !sparse;
          } )
        :: acc)
      merged_hists []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    elapsed_ns = Int64.sub t_now t0;
    counters = assoc_sorted merged_counters;
    gauges = assoc_sorted merged_gauges;
    hists;
    spans =
      List.sort
        (fun a b ->
          match Int64.compare a.start_ns b.start_ns with
          | 0 -> compare a.domain b.domain
          | c -> c)
        !spans;
    tracks =
      List.sort
        (fun a b ->
          match Int64.compare a.t_ns b.t_ns with
          | 0 -> compare (a.t_domain, a.t_name) (b.t_domain, b.t_name)
          | c -> c)
        !tracks;
    dropped_spans = !dropped;
    dropped_tracks = !dropped_tracks;
    gc_minor_words = !gc_minor;
    gc_major_words = !gc_major;
  }
