(* Telemetry core.  See the interface for the storage and determinism
   contracts.  The design constraint is the disabled path: one atomic
   load and a branch per call site, nothing else. *)

external now_ns : unit -> (int64[@unboxed])
  = "rgleak_obs_clock_ns" "rgleak_obs_clock_ns_unboxed"
[@@noalloc]

let enabled_flag = Atomic.make false
let epoch = Atomic.make 0L

let enabled () = Atomic.get enabled_flag

let set_enabled b =
  if b && Atomic.get epoch = 0L then Atomic.set epoch (now_ns ());
  Atomic.set enabled_flag b

type span_event = {
  path : string;
  depth : int;
  start_ns : int64;
  dur_ns : int64;
  domain : int;
}

(* Raw per-domain record: timestamps are absolute until snapshot time. *)
type raw_span = { r_path : string; r_depth : int; r_t0 : int64; r_t1 : int64 }

type local = {
  slot : int;
  mutable stack : string list; (* open span paths, innermost first *)
  mutable spans : raw_span list; (* newest first *)
  mutable span_count : int;
  mutable dropped : int;
  counters : (string, int ref) Hashtbl.t;
  sums : (string, float ref) Hashtbl.t;
  maxes : (string, float ref) Hashtbl.t;
}

(* A domain holds at most this many spans; beyond it we count drops so
   runaway instrumentation degrades gracefully instead of OOMing. *)
let max_spans_per_domain = 1 lsl 18

let registry : local list ref = ref []
let registry_mutex = Mutex.create ()
let next_slot = Atomic.make 0

let make_local () =
  let l =
    {
      slot = Atomic.fetch_and_add next_slot 1;
      stack = [];
      spans = [];
      span_count = 0;
      dropped = 0;
      counters = Hashtbl.create 32;
      sums = Hashtbl.create 16;
      maxes = Hashtbl.create 8;
    }
  in
  Mutex.lock registry_mutex;
  registry := l :: !registry;
  Mutex.unlock registry_mutex;
  l

let key = Domain.DLS.new_key make_local
let local () = Domain.DLS.get key
let domain_slot () = (local ()).slot

let reset () =
  Mutex.lock registry_mutex;
  let locals = !registry in
  Mutex.unlock registry_mutex;
  List.iter
    (fun l ->
      l.stack <- [];
      l.spans <- [];
      l.span_count <- 0;
      l.dropped <- 0;
      Hashtbl.reset l.counters;
      Hashtbl.reset l.sums;
      Hashtbl.reset l.maxes)
    locals;
  Atomic.set epoch (now_ns ())

(* ---------- recording ---------- *)

let record_span l ~path ~depth ~t0 ~t1 =
  if l.span_count >= max_spans_per_domain then l.dropped <- l.dropped + 1
  else begin
    l.spans <- { r_path = path; r_depth = depth; r_t0 = t0; r_t1 = t1 } :: l.spans;
    l.span_count <- l.span_count + 1
  end

let run_span l path f =
  let depth = List.length l.stack in
  l.stack <- path :: l.stack;
  let t0 = now_ns () in
  Fun.protect
    ~finally:(fun () ->
      let t1 = now_ns () in
      (match l.stack with _ :: tl -> l.stack <- tl | [] -> ());
      record_span l ~path ~depth ~t0 ~t1)
    f

let span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let l = local () in
    let path =
      match l.stack with [] -> name | parent :: _ -> parent ^ "/" ^ name
    in
    run_span l path f
  end

let span_under ~parent name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let l = local () in
    let path =
      match l.stack with
      | inner :: _ -> inner ^ "/" ^ name
      | [] -> if parent = "" then name else parent ^ "/" ^ name
    in
    run_span l path f
  end

let current_path () =
  if not (Atomic.get enabled_flag) then ""
  else match (local ()).stack with [] -> "" | p :: _ -> p

let count name n =
  if Atomic.get enabled_flag then begin
    let l = local () in
    match Hashtbl.find_opt l.counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.add l.counters name (ref n)
  end

let gauge_add name v =
  if Atomic.get enabled_flag then begin
    let l = local () in
    match Hashtbl.find_opt l.sums name with
    | Some r -> r := !r +. v
    | None -> Hashtbl.add l.sums name (ref v)
  end

let gauge_max name v =
  if Atomic.get enabled_flag then begin
    let l = local () in
    match Hashtbl.find_opt l.maxes name with
    | Some r -> if v > !r then r := v
    | None -> Hashtbl.add l.maxes name (ref v)
  end

(* ---------- snapshot ---------- *)

type snapshot = {
  elapsed_ns : int64;
  counters : (string * int) list;
  gauges : (string * float) list;
  spans : span_event list;
  dropped_spans : int;
}

let snapshot () =
  Mutex.lock registry_mutex;
  let locals = !registry in
  Mutex.unlock registry_mutex;
  (* Registration order (slot) fixes the merge order, mirroring the
     chunk-order reductions of the parallel runtime. *)
  let locals = List.sort (fun a b -> compare a.slot b.slot) locals in
  let t_now = now_ns () in
  let t0 = Atomic.get epoch in
  let t0 = if t0 = 0L then t_now else t0 in
  let merged_counters : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let merged_gauges : (string, float) Hashtbl.t = Hashtbl.create 32 in
  let dropped = ref 0 in
  let spans = ref [] in
  List.iter
    (fun l ->
      dropped := !dropped + l.dropped;
      Hashtbl.iter
        (fun name r ->
          let prev = Option.value ~default:0 (Hashtbl.find_opt merged_counters name) in
          Hashtbl.replace merged_counters name (prev + !r))
        l.counters;
      Hashtbl.iter
        (fun name r ->
          let prev =
            Option.value ~default:0.0 (Hashtbl.find_opt merged_gauges name)
          in
          Hashtbl.replace merged_gauges name (prev +. !r))
        l.sums;
      Hashtbl.iter
        (fun name r ->
          let v =
            match Hashtbl.find_opt merged_gauges name with
            | Some prev -> Float.max prev !r
            | None -> !r
          in
          Hashtbl.replace merged_gauges name v)
        l.maxes;
      List.iter
        (fun r ->
          spans :=
            {
              path = r.r_path;
              depth = r.r_depth;
              start_ns = Int64.sub r.r_t0 t0;
              dur_ns = Int64.sub r.r_t1 r.r_t0;
              domain = l.slot;
            }
            :: !spans)
        l.spans)
    locals;
  let assoc_sorted tbl =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  {
    elapsed_ns = Int64.sub t_now t0;
    counters = assoc_sorted merged_counters;
    gauges = assoc_sorted merged_gauges;
    spans =
      List.sort
        (fun a b ->
          match Int64.compare a.start_ns b.start_ns with
          | 0 -> compare a.domain b.domain
          | c -> c)
        !spans;
    dropped_spans = !dropped;
  }
