(** Exporters for {!Obs.snapshot}: a human-readable span tree and
    counter table, a Chrome trace-event file (load in [chrome://tracing]
    or {:https://ui.perfetto.dev}), and a flat metrics JSON. *)

val report : out_channel -> Obs.snapshot -> unit
(** Aggregated span tree (call count, total and mean time per path)
    followed by the counter and gauge tables.  The CLI prints this on
    stderr under [--trace]. *)

val chrome_trace : Obs.snapshot -> string
(** Chrome trace-event JSON: one ["X"] (complete) event per span with
    the recording domain as [tid], thread-name metadata per domain, and
    ["C"] (counter) events carrying the pool worker busy/idle gauges
    and the merged work counters. *)

val write_chrome_trace : path:string -> Obs.snapshot -> unit

val metrics_json : Obs.snapshot -> string
(** Flat metrics document, schema ["rgleak-metrics/1"]: elapsed time,
    merged counters and gauges, and per-path span aggregates
    (count/total seconds). *)

val write_metrics_json : path:string -> Obs.snapshot -> unit
