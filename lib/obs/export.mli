(** Exporters for {!Obs.snapshot}: a human-readable span tree with
    self-time and histogram tables, a Chrome trace-event file (load in
    [chrome://tracing] or {:https://ui.perfetto.dev}), a collapsed-stack
    file for flamegraph.pl / speedscope, and a flat metrics JSON. *)

val json_escape : string -> string
(** JSON string escaping shared by every textual exporter. *)

val self_times : Obs.snapshot -> (string * int * int64 * int64 * float) list
(** Per-path span aggregates
    [(path, count, total_ns, self_ns, minor_words)], sorted by path.
    Self time is the total minus the totals of direct children,
    clamped at zero (pool-task children may overlap their parent on
    other domains). *)

val report : out_channel -> Obs.snapshot -> unit
(** Aggregated span tree (call count, total, self and mean time per
    path), histogram quantile table, counter and gauge tables, GC
    totals, and dropped-record warnings.  The CLI prints this on
    stderr under [--trace]. *)

val chrome_trace : Obs.snapshot -> string
(** Chrome trace-event JSON: one ["X"] (complete) event per span with
    the recording domain as [tid] and its minor-words delta in [args],
    thread-name metadata per domain, one ["C"] (counter) event per
    recorded {!Obs.track} sample (timeline tracks for cache hits and
    queue depth), plus final-total ["C"] events for gauges and work
    counters. *)

val write_chrome_trace : path:string -> Obs.snapshot -> unit

val folded : Obs.snapshot -> string
(** Collapsed-stack ("folded") text: one line per span path with
    nonzero self time, ["frame;frame;frame <self-us>"], directly
    consumable by [flamegraph.pl] or speedscope.  Frame separators in
    segment names are sanitized. *)

val write_folded : path:string -> Obs.snapshot -> unit

val metrics_json : Obs.snapshot -> string
(** Flat metrics document, schema ["rgleak-metrics/2"]: elapsed time,
    merged counters and gauges, histogram summaries
    (count/sum/min/max, p50/p90/p99, sparse buckets), GC minor/major
    totals, and per-path span aggregates (count/total/self seconds,
    minor words).  Every ["rgleak-metrics/1"] field is retained with
    its v1 shape, so v1 consumers that ignore unknown keys keep
    working. *)

val write_metrics_json : path:string -> Obs.snapshot -> unit
