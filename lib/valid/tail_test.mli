(** Tail-statistics validation: IS-vs-brute-force equivalence gates,
    lognormal-sum analytic baselines, and the [rgleak-tail/1] document.

    Everything here follows the harness determinism contract: all
    randomness flows through {!Rgleak_num.Rng.stream} keyed by seeds
    derived from the scenario seed, so every field of every record is a
    pure function of (scenario, seed) — bit-identical across runs and
    [--jobs] values. *)

open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core

type scenario = {
  sc_n : int;
  sc_family : Corr_model.wid_family;
  sc_p : float;
  sc_mix_name : string;
  sc_mix : (string * float) list;
}

val default_scenario : scenario
(** 192 gates, spherical(120) correlation, p = 0.5, the ASIC mix. *)

type setup = {
  scenario : scenario;
  seed : int;
  mc : Mc_reference.t;
  placed : Placer.placed;
  chars : Characterize.cell_char array;
  corr : Corr_model.t;
}

val prepare :
  ?chars:Characterize.cell_char array -> seed:int -> scenario -> setup
(** Generates and places the scenario netlist and prepares the MC
    sampler (O(n³) factorization — keep [sc_n] validation-scale). *)

val budget_at : setup -> level:float -> float
(** A deterministic tail budget (nA): the [level] quantile of the
    Chang–Sapatnekar lognormal fit.  No sampling involved. *)

val run :
  ?jobs:int ->
  ?confidence:float ->
  ?shift_delta:float ->
  budget:float ->
  replicas:int ->
  setup ->
  Tail.result
(** The one IS entry point everything downstream shares: calibrates
    the shift at the budget (or takes [shift_delta] verbatim, nm) and
    estimates with the setup's role-2 replica stream — so the CLI, the
    golden baseline and the property tests all exercise the same
    deterministic path. *)

val analytic_exceedance : setup -> budget:float -> float
(** P(leakage > budget) under the Chang–Sapatnekar lognormal fit. *)

type equivalence = {
  eq_budget : float;
  eq_bf_replicas : int;
  eq_is_replicas : int;
  eq_bf_hits : int;
  eq_bf_p : float;
  eq_bf_lo : float;
  eq_bf_hi : float;
  eq_is_p : float;
  eq_is_se : float;
  eq_delta : float;
  eq_ess : float;
  eq_pass : bool;
}

val equivalence :
  ?jobs:int ->
  ?confidence:float ->
  budget:float ->
  bf_replicas:int ->
  is_replicas:int ->
  setup ->
  equivalence
(** The acceptance gate: a brute-force MC run of [bf_replicas] gives a
    Wilson CI for P(leakage > budget); the importance-sampled estimate
    using [is_replicas] must land inside it.  Raises
    [Invalid_argument] unless [bf_replicas >= 10 * is_replicas] — the
    10x replica asymmetry is the point. *)

type analytic = {
  an_budget : float;
  an_is_p : float;
  an_cs_p : float;
  an_log10_ratio : float;
  an_pass : bool;
}

val analytic_tolerance_log10 : float
(** Half an order of magnitude: the Wilkinson two-moment lognormal is
    tail-accurate to tens of percent at the z of 2–3 a calibrated
    budget targets, while a broken weight or shift is off by orders. *)

val analytic :
  ?jobs:int ->
  ?confidence:float ->
  budget:float ->
  replicas:int ->
  setup ->
  analytic
(** Compares the IS exceedance against the Chang–Sapatnekar
    lognormal-sum closed form at the same budget. *)

val schema_id : string
(** ["rgleak-tail/1"]. *)

type doc_meta = {
  doc_n : int;
  doc_corr : string;
  doc_mix : string;
  doc_p : float;
  doc_seed : int;  (** the user's master seed, not the derived stream *)
  doc_confidence : float;
  doc_analytic_p : float option;
}

val to_json : doc_meta -> Tail.result -> Vjson.t
(** The [rgleak-tail/1] document: scenario identity, the full estimate
    (probability, both CIs, ESS/weight diagnostics, quantiles) and the
    analytic cross-check.  Shared by [rgleak tail] and the golden
    tests. *)
