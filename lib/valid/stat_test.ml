(* Equivalence testing against a Monte Carlo reference.

   A naive fixed-epsilon check misleads in both directions: with few
   replicas the MC estimate wobbles past any tight epsilon even when
   the model is exact, and with many replicas a loose epsilon hides
   real model error.  The gate used here is the standard equivalence
   shape: a tier estimate is accepted iff it falls inside the MC
   confidence interval *widened by a declared model-error budget* —
   the budget states how much systematic model error the paper's
   accuracy claims allow, and the CI absorbs the sampling error on top
   of it. *)

open Rgleak_num

type interval = { center : float; se : float; z_crit : float }

let interval ~center ~se ~confidence =
  if not (se > 0.0) then
    invalid_arg "Stat_test.interval: need a positive standard error";
  { center; se; z_crit = Stats.z_of_confidence confidence }

let mean_interval ~mean ~std ~count ~confidence =
  interval ~center:mean ~se:(Stats.mean_se ~std ~count) ~confidence

let std_interval ?kurtosis ~std ~count ~confidence () =
  let se =
    match kurtosis with
    | None -> Stats.std_se ~std ~count
    | Some kurtosis -> Stats.std_se_kurtosis ~std ~kurtosis ~count
  in
  interval ~center:std ~se ~confidence

let half_width i = i.z_crit *. i.se

type verdict = {
  value : float;
  center : float;
  z : float;  (** (value − center) / se: sampling-error units *)
  ci_half_width : float;
  budget : float;  (** absolute widening applied to the CI *)
  pass : bool;
}

let equivalent ~value ~(reference : interval) ~budget_rel =
  if budget_rel < 0.0 then
    invalid_arg "Stat_test.equivalent: negative model-error budget";
  let budget = budget_rel *. Float.abs reference.center in
  let ci_half_width = half_width reference in
  let pass =
    Float.is_finite value
    && Float.abs (value -. reference.center) <= ci_half_width +. budget
  in
  {
    value;
    center = reference.center;
    z = Stats.z_score ~value ~center:reference.center ~se:reference.se;
    ci_half_width;
    budget;
    pass;
  }
