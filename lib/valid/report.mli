(** Fleet telemetry aggregation for [rgleak report].

    Parses ["rgleak-run/1"] ledger lines (see {!Rgleak_obs.Ledger})
    and ["rgleak-metrics/1"|"2"] documents into a common entry form,
    merges any number of them into one service-level window, and
    renders it as tables, as ["rgleak-report/1"] JSON, or as a
    regression diff between two windows.

    Histogram quantiles are recomputed from the pooled sparse bucket
    counts (exact integer merge — the same arithmetic as
    {!Rgleak_obs.Obs.snapshot}), never averaged from per-run
    summaries; a report over a single run therefore reproduces that
    run's own p50/p90/p99. *)

type entry = {
  e_subcommand : string;
  e_args_digest : string;
  e_exit_class : string;
  e_elapsed_s : float;
  e_counters : (string * int) list;
  e_hists : (string * Rgleak_obs.Obs.hist) list;
  e_gc_minor : float;
  e_gc_major : float;
}

val parse_ledger_string : string -> entry list
(** Parses JSONL ledger text; blank lines are skipped, malformed lines
    raise {!Vjson.Parse_error} naming the line number. *)

val parse_ledger_file : string -> entry list

val parse_metrics_file : string -> entry
(** Parses one [--metrics-json] document as a pseudo ledger entry
    (subcommand ["(metrics)"], exit class ["ok"]).  v1 documents
    contribute counters and elapsed time only; v2 documents carry
    histograms and GC totals too. *)

(** {2 Aggregation} *)

type agg = {
  runs : int;
  wall_s : float;  (** sum of per-run elapsed time *)
  by_subcommand : (string * int) list;
  by_exit_class : (string * int) list;  (** diagnostic/fault attribution *)
  counters : (string * int) list;  (** summed across runs *)
  hists : (string * Rgleak_obs.Obs.hist) list;  (** exact bucket merge *)
  gc_minor : float;
  gc_major : float;
}

val aggregate : entry list -> agg

val cache_hit_rate : agg -> float option
(** [hits / (hits + misses)] over the window; [None] when the window
    performed no cache lookups. *)

val hist_rate : agg -> Rgleak_obs.Obs.hist -> float
(** Samples per wall second over the window (QPS for per-request
    histograms). *)

val pp : out_channel -> agg -> unit
(** Human-readable service tables: run/exit-class counts, cache hit
    rate, per-histogram count/rate/p50/p90/p99/max, counters, GC. *)

val to_json : agg -> Vjson.t
(** ["rgleak-report/1"] document. *)

(** {2 Regression diff} *)

type level = Warn | Regression

type finding = {
  f_metric : string;
  f_what : string;  (** "p50", "p99" or "rate" *)
  f_base : float;
  f_current : float;
  f_level : level;
}

val diff : baseline:agg -> current:agg -> finding list
(** Compares every histogram present in both windows: p50/p99 ratios
    [>= 2x] are regressions, [>= 1.5x] warnings; a cache hit-rate drop
    [>= 0.05] warns, [>= 0.20] is a regression. *)

val has_regression : finding list -> bool

val pp_diff : out_channel -> finding list -> unit
