(* The paper-table sweep: for each point of a declared sweep, run the
   three estimator tiers and a seeded Monte Carlo reference on the same
   placed design, compute the per-tier relative errors against the
   exact tier (the shape of the paper's Tables 1-2), and gate every
   tier against the MC confidence interval through Stat_test.

   Determinism contract: everything stochastic flows through
   Rng.stream keyed by (seed, point index), and the MC reference uses
   the replica-stream sampler, so the whole report is a pure function
   of (sweep, seed) — bit-identical across runs and across --jobs
   values.  No wall-clock data is ever written into a report. *)

open Rgleak_num
open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core

type point = {
  label : string;
  n : int;
  aspect : float;  (** die width / height *)
  family : Corr_model.wid_family;
  p : float;  (** signal probability: the standby input-vector mix *)
  mix_name : string;
  mix : (string * float) list;
  replicas : int;
}

type budget = { mean : float; std : float }
(** Relative model-error budgets (fractions of the MC center). *)

type budgets = { exact : budget; linear : budget; integral : budget }

type sweep = {
  sweep_name : string;
  confidence : float;
  budgets : budgets;
  points : point list;
}

(* ---------- sweep definitions ---------- *)

let asic_mix =
  [
    ("INV_X1", 20.0); ("NAND2_X1", 18.0); ("NOR2_X1", 8.0); ("AND2_X1", 8.0);
    ("OR2_X1", 5.0); ("XOR2_X1", 4.0); ("BUF_X1", 5.0); ("DFF_X1", 9.0);
  ]

(* A register/complex-gate-heavy mix: the state spread that matters for
   standby (sleep-vector) leakage concentrates in stacked gates. *)
let standby_mix =
  [
    ("NAND3_X1", 10.0); ("NAND4_X1", 6.0); ("NOR3_X1", 8.0); ("AOI21_X1", 8.0);
    ("OAI21_X1", 8.0); ("DFF_X1", 25.0); ("DFFR_X1", 10.0); ("INV_X1", 10.0);
  ]

let family_spec = function
  | Corr_model.Linear { dmax } -> Printf.sprintf "linear:%g" dmax
  | Corr_model.Spherical { dmax } -> Printf.sprintf "spherical:%g" dmax
  | Corr_model.Exponential { range } -> Printf.sprintf "exp:%g" range
  | Corr_model.Gaussian { range } -> Printf.sprintf "gauss:%g" range
  | Corr_model.Truncated_exponential { range; dmax } ->
    Printf.sprintf "texp:%g:%g" range dmax

let point ?(aspect = 1.0) ?(p = 0.5) ?(mix_name = "asic") ?(mix = asic_mix)
    ?(replicas = 400) ~n family =
  {
    label =
      Printf.sprintf "n%d-a%g-%s-p%g-%s" n aspect (family_spec family) p
        mix_name;
    n;
    aspect;
    family;
    p;
    mix_name;
    mix;
    replicas;
  }

(* Budgets declare the systematic model error each tier is allowed on
   top of MC sampling noise.  The exact tier carries only the cell-model
   fit error (paper 2.1.2: mean avg 0.44%, sigma avg ~3%); the RG tiers
   add the finite-size random-gate error (Fig. 6: ~2% at 10^4 gates,
   growing as 1/sqrt(n) for smaller designs) — at the validation sizes
   here (n <= 1600) that dominates, so their sigma budget is wider. *)
let default_budgets =
  {
    exact = { mean = 0.02; std = 0.06 };
    linear = { mean = 0.03; std = 0.12 };
    integral = { mean = 0.03; std = 0.12 };
  }

let quick_sweep =
  {
    sweep_name = "quick";
    confidence = 0.99;
    budgets = default_budgets;
    points =
      [
        point ~n:144 ~replicas:200 (Corr_model.Spherical { dmax = 100.0 });
        (* The heavy-tailed point: 160 replicas demonstrably undersample
           the tail (the sample σ and kurtosis deflate together and the
           kurtosis-adjusted CI cannot see it), 400 are enough. *)
        point ~n:256 ~replicas:400 ~p:0.2 ~mix_name:"standby" ~mix:standby_mix
          (Corr_model.Exponential { range = 40.0 });
      ];
  }

let default_sweep =
  {
    sweep_name = "default";
    confidence = 0.99;
    budgets = default_budgets;
    points =
      [
        (* design-size sweep at the paper's spherical dmax = 120 um *)
        point ~n:400 (Corr_model.Spherical { dmax = 120.0 });
        point ~n:900 (Corr_model.Spherical { dmax = 120.0 });
        point ~n:1600 ~replicas:300 (Corr_model.Spherical { dmax = 120.0 });
        (* correlation-range sweep *)
        point ~n:900 (Corr_model.Spherical { dmax = 60.0 });
        point ~n:900 (Corr_model.Exponential { range = 30.0 });
        point ~n:900 (Corr_model.Gaussian { range = 80.0 });
        (* aspect-ratio sweep *)
        point ~n:900 ~aspect:2.5 (Corr_model.Spherical { dmax = 120.0 });
        (* sleep-vector mixes: input-vector probability extremes *)
        point ~n:900 ~p:0.2 ~mix_name:"standby" ~mix:standby_mix
          (Corr_model.Spherical { dmax = 120.0 });
        point ~n:900 ~p:0.8 ~mix_name:"standby" ~mix:standby_mix
          (Corr_model.Spherical { dmax = 120.0 });
      ];
  }

let sweep_named = function
  | "quick" -> quick_sweep
  | "default" -> default_sweep
  | s ->
    Guard.invalid
      (Printf.sprintf "unknown sweep %S (expected quick or default)" s)

(* ---------- report types ---------- *)

type tier_report = {
  tier : string;
  status : string;  (** ["ok"] or ["error:<class>"] *)
  mean : float option;
  std : float option;
  mean_rel_err : float option;  (** vs the exact tier *)
  std_rel_err : float option;
  mean_verdict : Stat_test.verdict option;  (** vs the MC interval *)
  std_verdict : Stat_test.verdict option;
  tier_pass : bool;
}

type mc_report = {
  mc_status : string;
  mc_mean : float option;
  mc_std : float option;
  mc_mean_ci : Stat_test.interval option;
  mc_std_ci : Stat_test.interval option;
}

type point_report = {
  point : point;
  width : float;
  height : float;
  mc : mc_report;
  tiers : tier_report list;
  point_pass : bool;
}

type report = {
  schema : string;
  seed : int;
  report_sweep : string;
  confidence : float;
  point_reports : point_report list;
  pass : bool;
}

let schema_id = "rgleak-validate/1"

(* ---------- execution ---------- *)

(* Independent derived seeds per (master seed, point, role): the role
   offsets are far enough apart that the placement stream and the MC
   replica streams of a point never coincide. *)
let derived_seed ~seed ~index ~role = seed + (7919 * (index + 1)) + (104729 * role)

let status_of_diag d = "error:" ^ Guard.class_name d

let tier_of_result ~tier ~(budget : budget) ~exact_stats ~mc
    (r : (float * float, Guard.diagnostic) result) =
  match r with
  | Error d ->
    {
      tier;
      status = status_of_diag d;
      mean = None;
      std = None;
      mean_rel_err = None;
      std_rel_err = None;
      mean_verdict = None;
      std_verdict = None;
      tier_pass = false;
    }
  | Ok (mean, std) ->
    let mean_rel_err =
      match exact_stats with
      | Some (rm, _) when rm <> 0.0 ->
        Some (Stats.relative_error ~actual:mean ~reference:rm)
      | _ -> None
    in
    let std_rel_err =
      match exact_stats with
      | Some (_, rs) when rs <> 0.0 ->
        Some (Stats.relative_error ~actual:std ~reference:rs)
      | _ -> None
    in
    let mean_verdict =
      Option.map
        (fun ci -> Stat_test.equivalent ~value:mean ~reference:ci ~budget_rel:budget.mean)
        mc.mc_mean_ci
    in
    let std_verdict =
      Option.map
        (fun ci -> Stat_test.equivalent ~value:std ~reference:ci ~budget_rel:budget.std)
        mc.mc_std_ci
    in
    let pass_of = function Some v -> v.Stat_test.pass | None -> false in
    {
      tier;
      status = "ok";
      mean = Some mean;
      std = Some std;
      mean_rel_err;
      std_rel_err;
      mean_verdict;
      std_verdict;
      tier_pass = pass_of mean_verdict && pass_of std_verdict;
    }

let run_point ?jobs ~chars ~confidence ~budgets ~seed ~index pt =
  let param = Process_param.default_channel_length in
  let corr = Corr_model.create pt.family param in
  let histogram = Histogram.of_weights pt.mix in
  let ctx = Estimate.context ~p:pt.p ~chars ~corr ~histogram () in
  let rgcorr = Estimate.correlation ctx in
  (* Aspect-ratio die of n 4x4 um sites; the layout's own bounding box
     is what the integral tiers integrate over. *)
  let site = 4.0 in
  let area = float_of_int pt.n *. site *. site in
  let width0 = sqrt (area *. pt.aspect) and height0 = sqrt (area /. pt.aspect) in
  let layout = Layout.of_dims ~n:pt.n ~width:width0 ~height:height0 in
  let width = Layout.width layout and height = Layout.height layout in
  let rng = Rng.stream ~seed:(derived_seed ~seed ~index ~role:0) 0 in
  let netlist = Generator.random_netlist ~histogram ~n:pt.n ~rng () in
  let placed = Placer.place ~strategy:Placer.Random ~rng netlist layout in
  (* Monte Carlo reference: replica streams keyed by the derived seed
     and reduced sequentially in replica order, so the intervals are
     jobs-invariant.  The σ interval uses the sample kurtosis — the
     right-skewed leakage sums make the MC σ wobble several times more
     than normal theory predicts, and the normal-theory SE would flag
     perfectly healthy tiers on unlucky replica draws. *)
  let mc =
    match
      Guard.protect (fun () ->
          let sampler = Mc_reference.prepare ~chars ~corr ~p:pt.p placed in
          Mc_reference.sample_many_stream ?jobs sampler
            ~seed:(derived_seed ~seed ~index ~role:1)
            ~count:pt.replicas)
    with
    | Error d ->
      {
        mc_status = status_of_diag d;
        mc_mean = None;
        mc_std = None;
        mc_mean_ci = None;
        mc_std_ci = None;
      }
    | Ok samples ->
      let count = Array.length samples in
      let nf = float_of_int count in
      let mean = Array.fold_left ( +. ) 0.0 samples /. nf in
      let m2 =
        Array.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 samples
      in
      let std = sqrt (m2 /. (nf -. 1.0)) in
      let kurtosis = Stats.kurtosis samples in
      {
        mc_status = "ok";
        mc_mean = Some mean;
        mc_std = Some std;
        mc_mean_ci = Some (Stat_test.mean_interval ~mean ~std ~count ~confidence);
        mc_std_ci =
          Some (Stat_test.std_interval ~kurtosis ~std ~count ~confidence ());
      }
  in
  let exact_r =
    Result.map
      (fun (r : Estimator_exact.result) ->
        (r.Estimator_exact.mean, r.Estimator_exact.std))
      (Estimator_exact.estimate_result ?jobs ~corr ~rgcorr placed)
  in
  let linear_r =
    Result.map
      (fun (r : Estimator_linear.result) ->
        (r.Estimator_linear.mean, r.Estimator_linear.std))
      (Estimator_linear.estimate_result ~corr ~rgcorr ~layout ())
  in
  let integral_r =
    Result.map
      (fun (r : Estimator_integral.result) ->
        (r.Estimator_integral.mean, r.Estimator_integral.std))
      (if Estimator_integral.polar_applicable ~corr ~width ~height then
         Estimator_integral.polar_result ~corr ~rgcorr ~n:pt.n ~width ~height ()
       else
         Estimator_integral.rect_2d_result ~corr ~rgcorr ~n:pt.n ~width ~height
           ())
  in
  let exact_stats = Result.to_option exact_r in
  let tiers =
    [
      tier_of_result ~tier:"exact" ~budget:budgets.exact ~exact_stats ~mc
        exact_r;
      tier_of_result ~tier:"linear" ~budget:budgets.linear ~exact_stats ~mc
        linear_r;
      tier_of_result ~tier:"integral" ~budget:budgets.integral ~exact_stats ~mc
        integral_r;
    ]
  in
  let point_pass =
    mc.mc_status = "ok" && List.for_all (fun t -> t.tier_pass) tiers
  in
  { point = pt; width; height; mc; tiers; point_pass }

let run ?jobs ?(chars = Characterize.default_library ()) ~seed (sweep : sweep) =
  (* A zero-point sweep would vacuously "pass" (List.for_all on []) —
     surface it as a typed input error instead of a hollow green. *)
  if sweep.points = [] then
    Guard.invalid
      (Printf.sprintf "sweep %S has no points: nothing to validate"
         sweep.sweep_name);
  let point_reports =
    List.mapi
      (fun index pt ->
        run_point ?jobs ~chars ~confidence:sweep.confidence
          ~budgets:sweep.budgets ~seed ~index pt)
      sweep.points
  in
  {
    schema = schema_id;
    seed;
    report_sweep = sweep.sweep_name;
    confidence = sweep.confidence;
    point_reports;
    pass = List.for_all (fun p -> p.point_pass) point_reports;
  }

(* ---------- JSON serialization (rgleak-validate/1) ---------- *)

let opt_num = function Some v -> Vjson.Num v | None -> Vjson.Null

let verdict_json = function
  | None -> Vjson.Null
  | Some (v : Stat_test.verdict) ->
    Vjson.Obj
      [
        ("value", Vjson.Num v.Stat_test.value);
        ("center", Vjson.Num v.Stat_test.center);
        ("z", Vjson.Num v.Stat_test.z);
        ("ci_half_width", Vjson.Num v.Stat_test.ci_half_width);
        ("budget", Vjson.Num v.Stat_test.budget);
        ("pass", Vjson.Bool v.Stat_test.pass);
      ]

let tier_json t =
  Vjson.Obj
    [
      ("tier", Vjson.Str t.tier);
      ("status", Vjson.Str t.status);
      ("mean", opt_num t.mean);
      ("std", opt_num t.std);
      ("mean_rel_err", opt_num t.mean_rel_err);
      ("std_rel_err", opt_num t.std_rel_err);
      ("mean_equiv", verdict_json t.mean_verdict);
      ("std_equiv", verdict_json t.std_verdict);
      ("pass", Vjson.Bool t.tier_pass);
    ]

let point_json p =
  Vjson.Obj
    [
      ("label", Vjson.Str p.point.label);
      ("n", Vjson.Num (float_of_int p.point.n));
      ("aspect", Vjson.Num p.point.aspect);
      ("corr", Vjson.Str (family_spec p.point.family));
      ("p", Vjson.Num p.point.p);
      ("mix", Vjson.Str p.point.mix_name);
      ("replicas", Vjson.Num (float_of_int p.point.replicas));
      ("width", Vjson.Num p.width);
      ("height", Vjson.Num p.height);
      ( "mc",
        Vjson.Obj
          [
            ("status", Vjson.Str p.mc.mc_status);
            ("mean", opt_num p.mc.mc_mean);
            ("std", opt_num p.mc.mc_std);
            ( "mean_se",
              opt_num
                (Option.map (fun i -> i.Stat_test.se) p.mc.mc_mean_ci) );
            ( "std_se",
              opt_num (Option.map (fun i -> i.Stat_test.se) p.mc.mc_std_ci) );
          ] );
      ("tiers", Vjson.Arr (List.map tier_json p.tiers));
      ("pass", Vjson.Bool p.point_pass);
    ]

let to_json r =
  Vjson.Obj
    [
      ("schema", Vjson.Str r.schema);
      ("seed", Vjson.Num (float_of_int r.seed));
      ("sweep", Vjson.Str r.report_sweep);
      ("confidence", Vjson.Num r.confidence);
      ("pass", Vjson.Bool r.pass);
      ("points", Vjson.Arr (List.map point_json r.point_reports));
    ]

let write_json ~path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Vjson.to_string ~indent:2 (to_json r)))

(* ---------- human-readable table (the paper's Tables 1-2 shape) ---------- *)

let pp_report fmt r =
  Format.fprintf fmt
    "validation sweep %S, seed %d, %.0f%% MC confidence@." r.report_sweep
    r.seed (100.0 *. r.confidence);
  List.iter
    (fun p ->
      Format.fprintf fmt "@.%s (die %.0f x %.0f um)@." p.point.label p.width
        p.height;
      (match (p.mc.mc_mean, p.mc.mc_std) with
      | Some m, Some s ->
        Format.fprintf fmt
          "  MC reference   : mean %10.2f  std %10.2f  (%d replicas)@." m s
          p.point.replicas
      | _ -> Format.fprintf fmt "  MC reference   : %s@." p.mc.mc_status);
      Format.fprintf fmt "  %-9s %10s %10s %9s %9s %7s %7s  %s@." "tier"
        "mean" "std" "d mean%" "d std%" "z(mu)" "z(sig)" "verdict";
      List.iter
        (fun t ->
          match (t.mean, t.std) with
          | Some m, Some s ->
            let pct = function
              | Some e -> Printf.sprintf "%9.3f" (100.0 *. e)
              | None -> Printf.sprintf "%9s" "-"
            in
            let z = function
              | Some (v : Stat_test.verdict) ->
                Printf.sprintf "%7.2f" v.Stat_test.z
              | None -> Printf.sprintf "%7s" "-"
            in
            Format.fprintf fmt "  %-9s %10.2f %10.2f %s %s %s %s  %s@." t.tier
              m s (pct t.mean_rel_err) (pct t.std_rel_err) (z t.mean_verdict)
              (z t.std_verdict)
              (if t.tier_pass then "ok" else "FAIL")
          | _ -> Format.fprintf fmt "  %-9s %s@." t.tier t.status)
        p.tiers)
    r.point_reports;
  Format.fprintf fmt "@.validation %s@."
    (if r.pass then "passed" else "FAILED")
