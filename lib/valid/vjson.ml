(* Minimal JSON: just enough for the validation reports and their
   golden baselines.  Numbers are printed with %.17g so a parse of the
   output reproduces the same floats — the golden-diff engine depends
   on that round-trip to distinguish "identical" from "drifted". *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---------- printing ---------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string ?(indent = 0) v =
  let b = Buffer.create 4096 in
  let pad depth = Buffer.add_string b (String.make (indent * depth) ' ') in
  let nl () = if indent > 0 then Buffer.add_char b '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Num f -> Buffer.add_string b (number_to_string f)
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | Arr [] -> Buffer.add_string b "[]"
    | Arr vs ->
      Buffer.add_char b '[';
      nl ();
      List.iteri
        (fun i v ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) v)
        vs;
      nl ();
      pad depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
      Buffer.add_char b '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (depth + 1);
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          go (depth + 1) v)
        kvs;
      nl ();
      pad depth;
      Buffer.add_char b '}'
  in
  go 0 v;
  if indent > 0 then Buffer.add_char b '\n';
  Buffer.contents b

(* ---------- parsing ---------- *)

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> true
      | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_body () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char b '"'
        | Some '\\' -> Buffer.add_char b '\\'
        | Some '/' -> Buffer.add_char b '/'
        | Some 'n' -> Buffer.add_char b '\n'
        | Some 't' -> Buffer.add_char b '\t'
        | Some 'r' -> Buffer.add_char b '\r'
        | Some 'b' -> Buffer.add_char b '\b'
        | Some 'f' -> Buffer.add_char b '\012'
        | Some 'u' ->
          (* the writer only escapes code points < 0x80 *)
          if !pos + 4 >= n then fail "truncated \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some c -> Buffer.add_char b (Char.chr (c land 0x7f))
          | None -> fail "bad \\u escape");
          pos := !pos + 4
        | _ -> fail "bad escape");
        advance ();
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "empty input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else Obj (members [])
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else Arr (elements [])
    | Some '"' -> Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
  and members acc =
    skip_ws ();
    let key = string_body () in
    skip_ws ();
    expect ':';
    let v = value () in
    skip_ws ();
    match peek () with
    | Some ',' ->
      advance ();
      members ((key, v) :: acc)
    | Some '}' ->
      advance ();
      List.rev ((key, v) :: acc)
    | _ -> fail "expected , or } in object"
  and elements acc =
    let v = value () in
    skip_ws ();
    match peek () with
    | Some ',' ->
      advance ();
      elements (v :: acc)
    | Some ']' ->
      advance ();
      List.rev (v :: acc)
    | _ -> fail "expected , or ] in array"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

(* ---------- accessors ---------- *)

let mem key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let get key j =
  match mem key j with
  | Some v -> v
  | None -> raise (Parse_error (Printf.sprintf "missing key %S" key))

let str = function
  | Str s -> s
  | _ -> raise (Parse_error "expected a string")

let num = function
  | Num f -> f
  | _ -> raise (Parse_error "expected a number")

let bool = function
  | Bool b -> b
  | _ -> raise (Parse_error "expected a boolean")

let arr = function
  | Arr vs -> vs
  | _ -> raise (Parse_error "expected an array")
