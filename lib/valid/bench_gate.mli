(** Performance- and allocation-regression gate over
    [rgleak-bench-estimators/4] timing documents.

    Compares a freshly measured bench document against the committed
    baseline.  Three kinds of findings:

    - {b Hard failures} — the schema string differs, or an
      (estimator, n) entry present in the baseline is missing from the
      current run, or an entry slowed down beyond its fail threshold.
      The default [fail_ratio] is 3x, but tiers whose wall time is a
      deterministic compute loop are tightened per estimator (the
      exact and delta-swap tiers fail at 2x).  These indicate a broken harness or a
      gross regression and should fail CI even on noisy shared
      runners.
    - {b Allocation failures} — a budgeted [alloc] metric of the
      current run (e.g. the exact tier's [minor_words_per_pair])
      exceeds its absolute words-per-unit budget, or is missing from
      the entry.  Budgets are absolute, not relative to the baseline:
      allocation is deterministic, so there is no runner noise to
      absorb.
    - {b Warnings} — an entry slowed down by more than [warn_ratio]
      (default 1.5x) but within its fail threshold.  On shared CI
      runners wall-clock noise of this size is routine, so warnings
      are reported but do not gate.

    Speed-ups and new entries are never findings.  Comparison uses the
    [seconds] field (the multi-job wall time); the deterministic work
    counters are not compared — they are covered by the golden and
    unit gates. *)

type finding = {
  estimator : string;
  n : int;
  base_seconds : float;
  cur_seconds : float;
  ratio : float;  (** current / baseline *)
  level : [ `Warn | `Fail ];
}

type alloc_finding = {
  estimator : string;
  n : int;
  metric : string;  (** e.g. ["minor_words_per_pair"] *)
  value : float;  (** nan when the metric is missing from the entry *)
  budget : float;  (** absolute ceiling, minor-heap words per unit *)
}

type verdict = {
  schema_ok : bool;
  missing : (string * int) list;  (** baseline entries absent from current *)
  compared : int;  (** entries present in both documents *)
  findings : finding list;  (** slowdowns beyond [warn_ratio], worst first *)
  alloc_findings : alloc_finding list;
      (** current-run allocation metrics over budget or missing *)
  best_ratio : float;
      (** smallest current/baseline ratio over the compared entries
          (1.0 when nothing compared); < 1 means something got faster *)
  pass : bool;  (** no hard failure (warnings allowed) *)
}

val compare :
  ?warn_ratio:float ->
  ?fail_ratio:float ->
  baseline:Vjson.t ->
  current:Vjson.t ->
  unit ->
  verdict
(** Raises {!Vjson.Parse_error} when either document is not a bench
    timing document (missing schema/entries or malformed entries). *)

val should_adopt : verdict -> bool
(** Ratchet policy: true when the current run should replace the
    committed baseline — it passed with no findings at all (not even
    warnings) and at least one entry ran >= 10% faster than the
    baseline.  Smaller improvements are treated as wall-clock noise so
    the baseline cannot drift downward run over run. *)

val pp : Format.formatter -> verdict -> unit
(** One line per finding plus a summary verdict line. *)

val overhead_schema : string
(** ["rgleak-overhead/3"]. *)

val check_overhead : Vjson.t -> (unit, string) result
(** Validates a [BENCH_overhead.json] document (written by
    [bench --run overhead]): current schema, histogram-probe fields
    present, recorded pass flag true, and the total disabled-cost
    fraction strictly under its budget.  Raises {!Vjson.Parse_error}
    on missing or mis-typed fields. *)
