(** Performance-regression gate over [rgleak-bench-estimators/3]
    timing documents.

    Compares a freshly measured bench document against the committed
    baseline.  Two kinds of findings:

    - {b Hard failures} — the schema string differs, or an
      (estimator, n) entry present in the baseline is missing from the
      current run, or an entry slowed down by more than [fail_ratio]
      (default 3×).  These indicate a broken harness or a gross
      regression and should fail CI even on noisy shared runners.
    - {b Warnings} — an entry slowed down by more than [warn_ratio]
      (default 1.5×) but within [fail_ratio].  On shared CI runners
      wall-clock noise of this size is routine, so warnings are
      reported but do not gate.

    Speed-ups and new entries are never findings.  Comparison uses the
    [seconds] field (the multi-job wall time); the deterministic work
    counters are not compared — they are covered by the golden and
    unit gates. *)

type finding = {
  estimator : string;
  n : int;
  base_seconds : float;
  cur_seconds : float;
  ratio : float;  (** current / baseline *)
  level : [ `Warn | `Fail ];
}

type verdict = {
  schema_ok : bool;
  missing : (string * int) list;  (** baseline entries absent from current *)
  compared : int;  (** entries present in both documents *)
  findings : finding list;  (** slowdowns beyond [warn_ratio], worst first *)
  pass : bool;  (** no hard failure (warnings allowed) *)
}

val compare :
  ?warn_ratio:float ->
  ?fail_ratio:float ->
  baseline:Vjson.t ->
  current:Vjson.t ->
  unit ->
  verdict
(** Raises {!Vjson.Parse_error} when either document is not a bench
    timing document (missing schema/entries or malformed entries). *)

val pp : Format.formatter -> verdict -> unit
(** One line per finding plus a summary verdict line. *)
