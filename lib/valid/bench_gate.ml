let expected_schema = "rgleak-bench-estimators/4"

type finding = {
  estimator : string;
  n : int;
  base_seconds : float;
  cur_seconds : float;
  ratio : float;
  level : [ `Warn | `Fail ];
}

type alloc_finding = {
  estimator : string;
  n : int;
  metric : string;
  value : float;  (** nan when the metric is missing from the entry *)
  budget : float;
}

type verdict = {
  schema_ok : bool;
  missing : (string * int) list;
  compared : int;
  findings : finding list;
  alloc_findings : alloc_finding list;
  best_ratio : float;
  pass : bool;
}

(* The exact tier is the headline kernel: its wall time is dominated by
   a deterministic pair loop with no I/O, so a 2x regression is a code
   change, not runner noise.  The delta-swap tier is the same pair
   arithmetic over a single row, timed across a whole swap plan, so it
   gets the same tightened threshold.  The other tiers keep the looser
   default because they mix RNG-heavy and malloc-heavy phases that
   shared runners disturb more. *)
let tightened_fail_ratio = [ ("exact", 2.0); ("delta-swap", 2.0) ]

let fail_ratio_for ~default estimator =
  match List.assoc_opt estimator tightened_fail_ratio with
  | Some r -> Float.min r default
  | None -> default

(* Allocation budgets, in minor-heap words per unit of work, checked on
   the current run only (they are absolute, not relative).  The flat
   kernel leaves the exact pair loop allocation-free — measured ~0.001
   words/pair including staging — so 0.05 words/pair flags any boxed
   value sneaking back into the loop while tolerating harness noise.
   The streaming MC replica loop allocates ~16 words per gate per
   sample (boxed transients at draw sites); 64·n words/sample is four
   times that profile. *)
let alloc_budgets ~estimator ~n =
  match estimator with
  | "exact" -> [ ("minor_words_per_pair", 0.05) ]
  | "mc" -> [ ("minor_words_per_sample", 64.0 *. float_of_int n) ]
  | _ -> []

type entry = { seconds : float; alloc : (string * float) list }

let entries_of doc =
  Vjson.arr (Vjson.get "entries" doc)
  |> List.map (fun e ->
         let estimator = Vjson.str (Vjson.get "estimator" e) in
         let n = int_of_float (Vjson.num (Vjson.get "n" e)) in
         let seconds = Vjson.num (Vjson.get "seconds" e) in
         let alloc =
           match Vjson.mem "alloc" e with
           | Some (Vjson.Obj kvs) ->
             List.map (fun (k, v) -> (k, Vjson.num v)) kvs
           | Some _ -> raise (Vjson.Parse_error "\"alloc\" is not an object")
           | None -> []
         in
         ((estimator, n), { seconds; alloc }))

let compare ?(warn_ratio = 1.5) ?(fail_ratio = 3.0) ~baseline ~current () =
  if warn_ratio <= 0.0 || fail_ratio < warn_ratio then
    invalid_arg "Bench_gate.compare: need 0 < warn_ratio <= fail_ratio";
  let schema doc = Vjson.str (Vjson.get "schema" doc) in
  let schema_ok =
    schema baseline = expected_schema && schema current = expected_schema
  in
  let base = entries_of baseline in
  let cur = entries_of current in
  let missing =
    List.filter_map
      (fun (k, _) -> if List.mem_assoc k cur then None else Some k)
      base
  in
  let findings = ref [] in
  let compared = ref 0 in
  let best_ratio = ref infinity in
  List.iter
    (fun ((estimator, n), { seconds = base_seconds; _ }) ->
      match List.assoc_opt (estimator, n) cur with
      | None -> ()
      | Some { seconds = cur_seconds; _ } ->
        incr compared;
        (* A baseline entry of ~0 s would make any ratio explode; floor
           both sides at 1 ms so only meaningful timings gate. *)
        let floor_s = 1e-3 in
        let ratio =
          Float.max cur_seconds floor_s /. Float.max base_seconds floor_s
        in
        best_ratio := Float.min !best_ratio ratio;
        if ratio > warn_ratio then
          findings :=
            {
              estimator;
              n;
              base_seconds;
              cur_seconds;
              ratio;
              level =
                (if ratio > fail_ratio_for ~default:fail_ratio estimator then
                   `Fail
                 else `Warn);
            }
            :: !findings)
    base;
  let findings =
    List.sort (fun a b -> Stdlib.compare b.ratio a.ratio) !findings
  in
  (* Allocation regressions: every budgeted metric must be present in
     the current entry and within budget.  A missing metric is a
     harness break (someone dropped the measurement), not a pass. *)
  let alloc_findings =
    List.concat_map
      (fun ((estimator, n), { alloc; _ }) ->
        List.filter_map
          (fun (metric, budget) ->
            match List.assoc_opt metric alloc with
            | Some value when value <= budget -> None
            | Some value -> Some { estimator; n; metric; value; budget }
            | None -> Some { estimator; n; metric; value = Float.nan; budget })
          (alloc_budgets ~estimator ~n))
      cur
  in
  let hard =
    (not schema_ok)
    || missing <> []
    || alloc_findings <> []
    || List.exists (fun f -> f.level = `Fail) findings
  in
  {
    schema_ok;
    missing;
    compared = !compared;
    findings;
    alloc_findings;
    best_ratio = (if !compared = 0 then 1.0 else !best_ratio);
    pass = not hard;
  }

(* Ratchet policy: adopt the current run as the new committed baseline
   only when it is a clean, meaningful improvement — nothing slowed
   past the warn threshold (adopting would enshrine the slowdown) and
   at least one entry got >= 10% faster (anything less is wall-clock
   noise that would make the baseline drift downward run over run). *)
let should_adopt v =
  v.pass && v.findings = [] && v.missing = [] && v.compared > 0
  && v.best_ratio <= 0.9

let pp fmt v =
  if not v.schema_ok then
    Format.fprintf fmt "FAIL: schema mismatch (want %s in both documents)@."
      expected_schema;
  List.iter
    (fun (e, n) ->
      Format.fprintf fmt "FAIL: baseline entry (%s, n=%d) missing from current run@." e n)
    v.missing;
  List.iter
    (fun f ->
      Format.fprintf fmt "%s: %s n=%d is %.2fx slower (%.4f s -> %.4f s)@."
        (match f.level with `Fail -> "FAIL" | `Warn -> "warn")
        f.estimator f.n f.ratio f.base_seconds f.cur_seconds)
    v.findings;
  List.iter
    (fun (a : alloc_finding) ->
      if Float.is_nan a.value then
        Format.fprintf fmt "FAIL: %s n=%d lacks required alloc metric %s@."
          a.estimator a.n a.metric
      else
        Format.fprintf fmt
          "FAIL: %s n=%d %s = %g exceeds budget %g words@." a.estimator a.n
          a.metric a.value a.budget)
    v.alloc_findings;
  Format.fprintf fmt "bench gate: %d entries compared, %d finding(s): %s@."
    v.compared
    (List.length v.findings + List.length v.alloc_findings)
    (if v.pass then "PASS" else "FAIL")

(* ---------- overhead documents ---------- *)

let overhead_schema = "rgleak-overhead/3"

(* Validates a BENCH_overhead.json produced by `bench --run overhead`:
   current schema, the histogram-probe fields present (guarding
   against the hist cost being silently dropped from the harness), and
   the recorded total under its budget. *)
let check_overhead doc =
  let get name =
    match Vjson.mem name doc with
    | Some v -> v
    | None -> raise (Vjson.Parse_error (Printf.sprintf "missing field %S" name))
  in
  match Vjson.str (get "schema") with
  | s when s <> overhead_schema ->
    Error (Printf.sprintf "overhead schema %S, want %S" s overhead_schema)
  | _ ->
    let overhead = Vjson.num (get "overhead_fraction") in
    let budget = Vjson.num (get "budget_fraction") in
    let hist_ns = Vjson.num (get "hist_site_ns") in
    let hist_frac = Vjson.num (get "hist_overhead_fraction") in
    if not (Vjson.bool (get "pass")) then
      Error "overhead document records pass=false"
    else if not (overhead < budget) then
      Error
        (Printf.sprintf "overhead fraction %.6f not under budget %.3f" overhead
           budget)
    else if not (hist_ns >= 0.0 && hist_frac >= 0.0) then
      Error "malformed histogram overhead fields"
    else Ok ()
