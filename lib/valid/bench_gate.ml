let expected_schema = "rgleak-bench-estimators/3"

type finding = {
  estimator : string;
  n : int;
  base_seconds : float;
  cur_seconds : float;
  ratio : float;
  level : [ `Warn | `Fail ];
}

type verdict = {
  schema_ok : bool;
  missing : (string * int) list;
  compared : int;
  findings : finding list;
  pass : bool;
}

let entries_of doc =
  Vjson.arr (Vjson.get "entries" doc)
  |> List.map (fun e ->
         let estimator = Vjson.str (Vjson.get "estimator" e) in
         let n = int_of_float (Vjson.num (Vjson.get "n" e)) in
         let seconds = Vjson.num (Vjson.get "seconds" e) in
         ((estimator, n), seconds))

let compare ?(warn_ratio = 1.5) ?(fail_ratio = 3.0) ~baseline ~current () =
  if warn_ratio <= 0.0 || fail_ratio < warn_ratio then
    invalid_arg "Bench_gate.compare: need 0 < warn_ratio <= fail_ratio";
  let schema doc = Vjson.str (Vjson.get "schema" doc) in
  let schema_ok =
    schema baseline = expected_schema && schema current = expected_schema
  in
  let base = entries_of baseline in
  let cur = entries_of current in
  let missing =
    List.filter_map
      (fun (k, _) -> if List.mem_assoc k cur then None else Some k)
      base
  in
  let findings = ref [] in
  let compared = ref 0 in
  List.iter
    (fun ((estimator, n), base_seconds) ->
      match List.assoc_opt (estimator, n) cur with
      | None -> ()
      | Some cur_seconds ->
        incr compared;
        (* A baseline entry of ~0 s would make any ratio explode; floor
           both sides at 1 ms so only meaningful timings gate. *)
        let floor_s = 1e-3 in
        let ratio =
          Float.max cur_seconds floor_s /. Float.max base_seconds floor_s
        in
        if ratio > warn_ratio then
          findings :=
            {
              estimator;
              n;
              base_seconds;
              cur_seconds;
              ratio;
              level = (if ratio > fail_ratio then `Fail else `Warn);
            }
            :: !findings)
    base;
  let findings =
    List.sort (fun a b -> Stdlib.compare b.ratio a.ratio) !findings
  in
  let hard =
    (not schema_ok)
    || missing <> []
    || List.exists (fun f -> f.level = `Fail) findings
  in
  { schema_ok; missing; compared = !compared; findings; pass = not hard }

let pp fmt v =
  if not v.schema_ok then
    Format.fprintf fmt "FAIL: schema mismatch (want %s in both documents)@."
      expected_schema;
  List.iter
    (fun (e, n) ->
      Format.fprintf fmt "FAIL: baseline entry (%s, n=%d) missing from current run@." e n)
    v.missing;
  List.iter
    (fun f ->
      Format.fprintf fmt "%s: %s n=%d is %.2fx slower (%.4f s -> %.4f s)@."
        (match f.level with `Fail -> "FAIL" | `Warn -> "warn")
        f.estimator f.n f.ratio f.base_seconds f.cur_seconds)
    v.findings;
  Format.fprintf fmt "bench gate: %d entries compared, %d finding(s): %s@."
    v.compared (List.length v.findings)
    (if v.pass then "PASS" else "FAIL")
