(* Tail-statistics extension of the validation harness.

   Three layers:
   - a small-n scenario builder sharing the experiment harness's
     determinism conventions (Rng.stream keyed by derived seeds, so
     every number is a pure function of the scenario and seed);
   - the IS-vs-brute-force equivalence gate: the importance-sampled
     exceedance probability must land inside the Wilson 95% CI of a
     brute-force MC run using >= 10x more replicas;
   - the analytic cross-check: the lognormal-sum baselines (the exact
     pairwise tier and Chang–Sapatnekar from lib/baseline) give
     closed-form exceedance probabilities the IS estimate must agree
     with to within tail-model error.

   The rgleak-tail/1 JSON document (the `rgleak tail` output and the
   committed golden baseline data/golden/tail_quick.json) is also
   assembled here so the CLI and the tests share one serializer. *)

open Rgleak_num
open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core
open Rgleak_baseline

type scenario = {
  sc_n : int;
  sc_family : Corr_model.wid_family;
  sc_p : float;
  sc_mix_name : string;
  sc_mix : (string * float) list;
}

let default_mix =
  [
    ("INV_X1", 20.0); ("NAND2_X1", 18.0); ("NOR2_X1", 8.0); ("AND2_X1", 8.0);
    ("OR2_X1", 5.0); ("XOR2_X1", 4.0); ("BUF_X1", 5.0); ("DFF_X1", 9.0);
  ]

let default_scenario =
  {
    sc_n = 192;
    sc_family = Corr_model.Spherical { dmax = 120.0 };
    sc_p = 0.5;
    sc_mix_name = "asic";
    sc_mix = default_mix;
  }

type setup = {
  scenario : scenario;
  seed : int;
  mc : Mc_reference.t;
  placed : Placer.placed;
  chars : Characterize.cell_char array;
  corr : Corr_model.t;
}

(* Same role-split convention as Experiment.derived_seed: placement and
   replica streams never share an RNG stream. *)
let derived_seed ~seed ~role = seed + (7919 * role) + 104729

let prepare ?(chars = Characterize.default_library ()) ~seed scenario =
  let param = Process_param.default_channel_length in
  let corr = Corr_model.create scenario.sc_family param in
  let histogram = Histogram.of_weights scenario.sc_mix in
  let site = 4.0 in
  let area = float_of_int scenario.sc_n *. site *. site in
  let side = sqrt area in
  let layout = Layout.of_dims ~n:scenario.sc_n ~width:side ~height:side in
  let rng = Rng.stream ~seed:(derived_seed ~seed ~role:0) 0 in
  let netlist = Generator.random_netlist ~histogram ~n:scenario.sc_n ~rng () in
  let placed = Placer.place ~strategy:Placer.Random ~rng netlist layout in
  let mc = Mc_reference.prepare ~chars ~corr ~p:scenario.sc_p placed in
  { scenario; seed; mc; placed; chars; corr }

(* A deterministic budget in the tail of the leakage distribution: the
   [level] quantile of the exact-tier lognormal fit.  No sampling is
   involved, so the budget — and everything downstream — is a pure
   function of (scenario, level). *)
let budget_at setup ~level =
  let r =
    Chang_sapatnekar.analyze ~p:setup.scenario.sc_p ~chars:setup.chars
      ~corr:setup.corr setup.placed
  in
  Distribution.quantile r.Chang_sapatnekar.distribution level

(* The one IS entry point everything downstream shares (CLI, golden,
   equivalence and analytic gates): calibrate-or-override the shift,
   then estimate with the role-2 replica stream. *)
let run ?jobs ?(confidence = 0.95) ?shift_delta ~budget ~replicas setup =
  let delta =
    match shift_delta with
    | Some d -> d
    | None -> Mc_reference.calibrate_shift setup.mc ~budget
  in
  let shift = Mc_reference.uniform_shift setup.mc ~delta in
  Tail.estimate ?jobs ~confidence ~mc:setup.mc ~budget ~shift
    ~seed:(derived_seed ~seed:setup.seed ~role:2)
    ~replicas ()

let analytic_exceedance setup ~budget =
  let cs =
    Chang_sapatnekar.analyze ~p:setup.scenario.sc_p ~chars:setup.chars
      ~corr:setup.corr setup.placed
  in
  Distribution.exceedance cs.Chang_sapatnekar.distribution ~budget

(* ---------- IS vs brute-force equivalence ---------- *)

type equivalence = {
  eq_budget : float;
  eq_bf_replicas : int;
  eq_is_replicas : int;
  eq_bf_hits : int;
  eq_bf_p : float;
  eq_bf_lo : float;  (** Wilson 95% bounds of the brute-force estimate *)
  eq_bf_hi : float;
  eq_is_p : float;
  eq_is_se : float;
  eq_delta : float;
  eq_ess : float;
  eq_pass : bool;
}

let equivalence ?jobs ?(confidence = 0.95) ~budget ~bf_replicas ~is_replicas
    setup =
  if bf_replicas < 10 * is_replicas then
    invalid_arg
      "Tail_test.equivalence: the brute-force run must use >= 10x the IS \
       replicas — that asymmetry is the point of the gate";
  let bf =
    Mc_reference.sample_many_stream ?jobs setup.mc
      ~seed:(derived_seed ~seed:setup.seed ~role:1)
      ~count:bf_replicas
  in
  let hits = Array.fold_left (fun a x -> if x > budget then a + 1 else a) 0 bf in
  let bf_p = float_of_int hits /. float_of_int bf_replicas in
  let z = Stats.z_of_confidence confidence in
  let bf_lo, bf_hi = Stats.wilson_interval ~hits ~count:bf_replicas ~z in
  let r = run ?jobs ~confidence ~budget ~replicas:is_replicas setup in
  {
    eq_budget = budget;
    eq_bf_replicas = bf_replicas;
    eq_is_replicas = is_replicas;
    eq_bf_hits = hits;
    eq_bf_p = bf_p;
    eq_bf_lo = bf_lo;
    eq_bf_hi = bf_hi;
    eq_is_p = r.Tail.p_exceed;
    eq_is_se = r.Tail.se;
    eq_delta = r.Tail.delta;
    eq_ess = r.Tail.ess;
    eq_pass = r.Tail.p_exceed >= bf_lo && r.Tail.p_exceed <= bf_hi;
  }

(* ---------- analytic lognormal-sum cross-check ---------- *)

type analytic = {
  an_budget : float;
  an_is_p : float;
  an_cs_p : float;  (** Chang–Sapatnekar lognormal exceedance *)
  an_log10_ratio : float;  (** log10 (IS / analytic) *)
  an_pass : bool;
}

(* The Wilkinson lognormal is a two-moment fit: at the moderate tails
   the calibrated budget targets (z of 2–3), its exceedance is right
   to within tens of percent, so half an order of magnitude is a
   conservative but meaningful gate — a broken weight or shift is off
   by orders of magnitude. *)
let analytic_tolerance_log10 = 0.5

let analytic ?jobs ?(confidence = 0.95) ~budget ~replicas setup =
  let cs_p = analytic_exceedance setup ~budget in
  let r = run ?jobs ~confidence ~budget ~replicas setup in
  let is_p = r.Tail.p_exceed in
  let ratio =
    if is_p > 0.0 && cs_p > 0.0 then Float.log10 (is_p /. cs_p) else infinity
  in
  {
    an_budget = budget;
    an_is_p = is_p;
    an_cs_p = cs_p;
    an_log10_ratio = ratio;
    an_pass = Float.abs ratio <= analytic_tolerance_log10;
  }

(* ---------- the rgleak-tail/1 document ---------- *)

let schema_id = "rgleak-tail/1"

type doc_meta = {
  doc_n : int;
  doc_corr : string;
  doc_mix : string;
  doc_p : float;
  doc_seed : int;  (** the user's master seed, not the derived stream *)
  doc_confidence : float;
  doc_analytic_p : float option;
      (** lognormal-sum exceedance at the same budget, when available *)
}

let to_json meta (r : Tail.result) =
  Vjson.Obj
    [
      ("schema", Vjson.Str schema_id);
      ("n", Vjson.Num (float_of_int meta.doc_n));
      ("corr", Vjson.Str meta.doc_corr);
      ("mix", Vjson.Str meta.doc_mix);
      ("p", Vjson.Num meta.doc_p);
      ("seed", Vjson.Num (float_of_int meta.doc_seed));
      ("replicas", Vjson.Num (float_of_int r.Tail.replicas));
      ("confidence", Vjson.Num meta.doc_confidence);
      ("budget_na", Vjson.Num r.Tail.budget);
      ("delta_nm", Vjson.Num r.Tail.delta);
      ("shift_norm2", Vjson.Num r.Tail.shift_norm2);
      ("p_exceed", Vjson.Num r.Tail.p_exceed);
      ("se", Vjson.Num r.Tail.se);
      ("ci_lo", Vjson.Num r.Tail.ci_delta.Tail.lo);
      ("ci_hi", Vjson.Num r.Tail.ci_delta.Tail.hi);
      ("wilson_lo", Vjson.Num r.Tail.ci_wilson.Tail.lo);
      ("wilson_hi", Vjson.Num r.Tail.ci_wilson.Tail.hi);
      ("hits", Vjson.Num (float_of_int r.Tail.hits));
      ("hit_rate", Vjson.Num r.Tail.hit_rate);
      ("ess", Vjson.Num r.Tail.ess);
      ("mean_weight", Vjson.Num r.Tail.mean_weight);
      ("max_weight", Vjson.Num r.Tail.max_weight);
      ( "analytic_p",
        match meta.doc_analytic_p with
        | Some p -> Vjson.Num p
        | None -> Vjson.Null );
      ( "quantiles",
        Vjson.Arr
          (List.map
             (fun (q : Tail.quantile) ->
               Vjson.Obj
                 [
                   ("level", Vjson.Num q.Tail.level);
                   ("leakage_na", Vjson.Num q.Tail.value);
                 ])
             r.Tail.quantiles) );
    ]
