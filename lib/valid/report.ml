(* Fleet telemetry aggregation: parse rgleak-run/1 ledger lines (and
   rgleak-metrics/1-2 files), merge them into one service-level view,
   and render tables / JSON / a regression diff.

   Quantiles are recomputed from the sparse bucket counts carried in
   every record — never averaged from the per-run summaries — so the
   aggregate p50/p99 over N runs is exactly the quantile of the pooled
   sample set (at bucket resolution), and a report over a single-run
   ledger reproduces the quantiles printed in that run's
   --metrics-json. *)

module Obs = Rgleak_obs.Obs

type entry = {
  e_subcommand : string;
  e_args_digest : string;
  e_exit_class : string;
  e_elapsed_s : float;
  e_counters : (string * int) list;
  e_hists : (string * Obs.hist) list;
  e_gc_minor : float;
  e_gc_major : float;
}

let fail fmt = Printf.ksprintf (fun m -> raise (Vjson.Parse_error m)) fmt

let obj_fields = function
  | Vjson.Obj fields -> fields
  | _ -> fail "expected an object"

let opt_obj name j = match Vjson.mem name j with Some o -> obj_fields o | None -> []
let opt_num name ~default j =
  match Vjson.mem name j with Some v -> Vjson.num v | None -> default
let opt_str name ~default j =
  match Vjson.mem name j with Some v -> Vjson.str v | None -> default

let hist_of_json j =
  let buckets =
    opt_obj "buckets" j
    |> List.map (fun (k, v) ->
           match int_of_string_opt k with
           | Some i -> (i, int_of_float (Vjson.num v))
           | None -> fail "non-integer bucket index %S" k)
    |> List.sort compare
  in
  {
    Obs.h_count = int_of_float (opt_num "count" ~default:0.0 j);
    h_sum = opt_num "sum" ~default:0.0 j;
    h_min = opt_num "min" ~default:infinity j;
    h_max = opt_num "max" ~default:neg_infinity j;
    h_buckets = buckets;
  }

let hists_of_json j =
  List.map (fun (name, h) -> (name, hist_of_json h)) (opt_obj "hists" j)

let counters_of_json j =
  List.map
    (fun (name, v) -> (name, int_of_float (Vjson.num v)))
    (opt_obj "counters" j)

let entry_of_run j =
  (match Vjson.mem "schema" j with
  | Some (Vjson.Str "rgleak-run/1") -> ()
  | Some (Vjson.Str s) -> fail "unsupported ledger schema %S" s
  | _ -> fail "ledger record has no schema tag");
  let gc = Vjson.mem "gc" j in
  {
    e_subcommand = opt_str "subcommand" ~default:"?" j;
    e_args_digest = opt_str "args_digest" ~default:"" j;
    e_exit_class = opt_str "exit_class" ~default:"?" j;
    e_elapsed_s = opt_num "elapsed_s" ~default:0.0 j;
    e_counters = counters_of_json j;
    e_hists = hists_of_json j;
    e_gc_minor =
      (match gc with Some g -> opt_num "minor_words" ~default:0.0 g | None -> 0.0);
    e_gc_major =
      (match gc with Some g -> opt_num "major_words" ~default:0.0 g | None -> 0.0);
  }

(* A --metrics-json document as a pseudo ledger entry.  v1 documents
   (no hists/gc) degrade to counters only — the v1 compatibility
   path. *)
let entry_of_metrics j =
  (match Vjson.mem "schema" j with
  | Some (Vjson.Str ("rgleak-metrics/1" | "rgleak-metrics/2")) -> ()
  | Some (Vjson.Str s) -> fail "unsupported metrics schema %S" s
  | _ -> fail "metrics document has no schema tag");
  let gc = Vjson.mem "gc" j in
  {
    e_subcommand = "(metrics)";
    e_args_digest = "";
    e_exit_class = "ok";
    e_elapsed_s = opt_num "elapsed_s" ~default:0.0 j;
    e_counters = counters_of_json j;
    e_hists = hists_of_json j;
    e_gc_minor =
      (match gc with Some g -> opt_num "minor_words" ~default:0.0 g | None -> 0.0);
    e_gc_major =
      (match gc with Some g -> opt_num "major_words" ~default:0.0 g | None -> 0.0);
  }

let parse_ledger_string text =
  let lines = String.split_on_char '\n' text in
  List.concat
    (List.mapi
       (fun i line ->
         if String.trim line = "" then []
         else
           try [ entry_of_run (Vjson.parse line) ]
           with Vjson.Parse_error m ->
             fail "ledger line %d: %s" (i + 1) m)
       lines)

let parse_ledger_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_ledger_string text

let parse_metrics_file path = entry_of_metrics (Vjson.parse_file path)

(* ---------- aggregation ---------- *)

type agg = {
  runs : int;
  wall_s : float;
  by_subcommand : (string * int) list;
  by_exit_class : (string * int) list;
  counters : (string * int) list;
  hists : (string * Obs.hist) list;
  gc_minor : float;
  gc_major : float;
}

let bump tbl name n =
  match Hashtbl.find_opt tbl name with
  | Some r -> r := !r + n
  | None -> Hashtbl.add tbl name (ref n)

let merge_hist a b =
  let tbl = Hashtbl.create 32 in
  List.iter (fun (i, c) -> bump tbl i c) a.Obs.h_buckets;
  List.iter (fun (i, c) -> bump tbl i c) b.Obs.h_buckets;
  {
    Obs.h_count = a.Obs.h_count + b.Obs.h_count;
    h_sum = a.Obs.h_sum +. b.Obs.h_sum;
    h_min = Float.min a.Obs.h_min b.Obs.h_min;
    h_max = Float.max a.Obs.h_max b.Obs.h_max;
    h_buckets =
      Hashtbl.fold (fun i r acc -> (i, !r) :: acc) tbl [] |> List.sort compare;
  }

let sorted_assoc tbl =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl [] |> List.sort compare

let aggregate entries =
  let subcommands = Hashtbl.create 8 in
  let classes = Hashtbl.create 8 in
  let counters = Hashtbl.create 32 in
  let hists : (string, Obs.hist ref) Hashtbl.t = Hashtbl.create 16 in
  let wall = ref 0.0 in
  let gc_minor = ref 0.0 in
  let gc_major = ref 0.0 in
  List.iter
    (fun e ->
      bump subcommands e.e_subcommand 1;
      bump classes e.e_exit_class 1;
      wall := !wall +. e.e_elapsed_s;
      gc_minor := !gc_minor +. e.e_gc_minor;
      gc_major := !gc_major +. e.e_gc_major;
      List.iter (fun (name, v) -> bump counters name v) e.e_counters;
      List.iter
        (fun (name, h) ->
          match Hashtbl.find_opt hists name with
          | Some r -> r := merge_hist !r h
          | None -> Hashtbl.add hists name (ref h))
        e.e_hists)
    entries;
  {
    runs = List.length entries;
    wall_s = !wall;
    by_subcommand = sorted_assoc subcommands;
    by_exit_class = sorted_assoc classes;
    counters = sorted_assoc counters;
    hists =
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) hists []
      |> List.sort compare;
    gc_minor = !gc_minor;
    gc_major = !gc_major;
  }

let counter a name =
  match List.assoc_opt name a.counters with Some v -> v | None -> 0

(* hit rate over all cache lookups; None when the window has none. *)
let cache_hit_rate a =
  let hits = counter a "cache.hits" and misses = counter a "cache.misses" in
  if hits + misses = 0 then None
  else Some (float_of_int hits /. float_of_int (hits + misses))

let hist_rate a h =
  if a.wall_s > 0.0 then float_of_int h.Obs.h_count /. a.wall_s else 0.0

(* ---------- rendering ---------- *)

let pp oc a =
  let p fmt = Printf.fprintf oc fmt in
  p "== rgleak report: %d run%s, %.3f s total wall ==\n" a.runs
    (if a.runs = 1 then "" else "s")
    a.wall_s;
  let counts label items =
    if items <> [] then begin
      p "-- %s:" label;
      List.iter (fun (name, n) -> p " %s=%d" name n) items;
      p "\n"
    end
  in
  counts "subcommands" a.by_subcommand;
  counts "exit classes" a.by_exit_class;
  (match cache_hit_rate a with
  | Some rate ->
    p "-- cache: %d hits / %d misses (%.1f%% hit rate)\n"
      (counter a "cache.hits")
      (counter a "cache.misses")
      (100.0 *. rate)
  | None -> ());
  if a.hists <> [] then begin
    p "-- latency %-25s %8s %9s %10s %10s %10s %10s\n" "" "count" "rate/s"
      "p50" "p90" "p99" "max";
    List.iter
      (fun (name, h) ->
        p "   %-35s %8d %9.2f %10.3g %10.3g %10.3g %10.3g\n" name
          h.Obs.h_count (hist_rate a h)
          (Obs.hist_quantile h 0.50)
          (Obs.hist_quantile h 0.90)
          (Obs.hist_quantile h 0.99)
          h.Obs.h_max)
      a.hists
  end;
  if a.counters <> [] then begin
    p "-- counters\n";
    List.iter (fun (name, v) -> p "   %-42s %14d\n" name v) a.counters
  end;
  if a.gc_minor > 0.0 || a.gc_major > 0.0 then
    p "-- gc: %.3g minor words, %.3g major words\n" a.gc_minor a.gc_major;
  flush oc

let to_json a =
  let num_i n = Vjson.Num (float_of_int n) in
  let counts items = Vjson.Obj (List.map (fun (k, n) -> (k, num_i n)) items) in
  let hist_json (name, h) =
    ( name,
      Vjson.Obj
        [
          ("count", num_i h.Obs.h_count);
          ("rate_per_s", Vjson.Num (hist_rate a h));
          ("p50", Vjson.Num (Obs.hist_quantile h 0.50));
          ("p90", Vjson.Num (Obs.hist_quantile h 0.90));
          ("p99", Vjson.Num (Obs.hist_quantile h 0.99));
          ("max", Vjson.Num h.Obs.h_max);
          ("sum", Vjson.Num h.Obs.h_sum);
        ] )
  in
  Vjson.Obj
    ([
       ("schema", Vjson.Str "rgleak-report/1");
       ("runs", num_i a.runs);
       ("wall_s", Vjson.Num a.wall_s);
       ("by_subcommand", counts a.by_subcommand);
       ("by_exit_class", counts a.by_exit_class);
     ]
    @ (match cache_hit_rate a with
      | Some rate ->
        [
          ( "cache",
            Vjson.Obj
              [
                ("hits", num_i (counter a "cache.hits"));
                ("misses", num_i (counter a "cache.misses"));
                ("hit_rate", Vjson.Num rate);
              ] );
        ]
      | None -> [])
    @ [
        ("latency", Vjson.Obj (List.map hist_json a.hists));
        ("counters", counts a.counters);
        ( "gc",
          Vjson.Obj
            [
              ("minor_words", Vjson.Num a.gc_minor);
              ("major_words", Vjson.Num a.gc_major);
            ] );
      ])

(* ---------- diff / regression attribution ---------- *)

type level = Warn | Regression

type finding = {
  f_metric : string;
  f_what : string;
  f_base : float;
  f_current : float;
  f_level : level;
}

let warn_ratio = 1.5
let fail_ratio = 2.0

let diff ~baseline ~current =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  List.iter
    (fun (name, h) ->
      match List.assoc_opt name baseline.hists with
      | Some hb when hb.Obs.h_count > 0 && h.Obs.h_count > 0 ->
        List.iter
          (fun (what, q) ->
            let b = Obs.hist_quantile hb q and c = Obs.hist_quantile h q in
            if b > 0.0 && c > 0.0 then begin
              let ratio = c /. b in
              if ratio >= fail_ratio then
                add
                  {
                    f_metric = name;
                    f_what = what;
                    f_base = b;
                    f_current = c;
                    f_level = Regression;
                  }
              else if ratio >= warn_ratio then
                add
                  {
                    f_metric = name;
                    f_what = what;
                    f_base = b;
                    f_current = c;
                    f_level = Warn;
                  }
            end)
          [ ("p50", 0.50); ("p99", 0.99) ]
      | _ -> ())
    current.hists;
  (match (cache_hit_rate baseline, cache_hit_rate current) with
  | Some b, Some c when b -. c >= 0.05 ->
    add
      {
        f_metric = "cache.hit_rate";
        f_what = "rate";
        f_base = b;
        f_current = c;
        f_level = (if b -. c >= 0.20 then Regression else Warn);
      }
  | _ -> ());
  List.rev !findings

let has_regression findings =
  List.exists (fun f -> f.f_level = Regression) findings

let pp_diff oc findings =
  let p fmt = Printf.fprintf oc fmt in
  if findings = [] then p "diff: no latency or cache regressions\n"
  else
    List.iter
      (fun f ->
        p "%s: %s %s %.3g -> %.3g (%.2fx)\n"
          (match f.f_level with Regression -> "REGRESSION" | Warn -> "warn")
          f.f_metric f.f_what f.f_base f.f_current
          (f.f_current /. f.f_base))
      findings;
  flush oc
