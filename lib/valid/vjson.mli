(** Minimal JSON values for the validation reports and their committed
    golden baselines.

    The printer emits numbers with enough precision ([%.17g]) that
    parsing its output reproduces the same floats, so a report written,
    committed, and re-parsed compares bit-for-bit against a fresh run —
    the golden-diff engine's notion of "identical" rests on this
    round-trip. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : ?indent:int -> t -> string
(** Serialize; [indent > 0] pretty-prints with that many spaces per
    level (and a trailing newline), [indent = 0] (default) is compact. *)

val parse : string -> t
(** Raises {!Parse_error} on malformed input. *)

val parse_file : string -> t

val mem : string -> t -> t option
(** Object member lookup; [None] on missing key or non-object. *)

val get : string -> t -> t
(** Like {!mem} but raises {!Parse_error} on a missing key. *)

val str : t -> string
val num : t -> float
val bool : t -> bool
val arr : t -> t list
(** Coercions; raise {!Parse_error} on a shape mismatch. *)
