(** Golden-artifact regression: structural + tolerance diffs of
    [rgleak-validate/1] reports against committed baselines.

    Drift classes:
    - {!Identical} — the fresh report is bit-for-bit the baseline (the
      expected steady state, since reports are pure functions of
      [(sweep, seed)]);
    - {!Benign} — numeric fields moved, but every movement stays within
      the baseline's own MC confidence interval (indistinguishable from
      the pinned run's sampling noise; appears when numerics are
      intentionally reordered);
    - {!Breaking} — structural changes (schema, point set, tier set,
      statuses, pass flags) or numeric drift beyond the MC interval:
      the code now computes something statistically different. *)

type severity = Identical | Benign | Breaking

type finding = {
  path : string;  (** location, e.g. ["points/3/tiers/1/std"] *)
  kind : severity;
  detail : string;
}

type diff = { severity : severity; findings : finding list }

val severity_name : severity -> string
val worst : severity -> severity -> severity

val compare : baseline:Vjson.t -> current:Vjson.t -> diff
(** Diffs two parsed reports.  Raises {!Vjson.Parse_error} if either
    document does not have the [rgleak-validate/1] shape. *)

val tail_schema : string
(** ["rgleak-tail/1"]. *)

val compare_tail : baseline:Vjson.t -> current:Vjson.t -> diff
(** Diffs two [rgleak-tail/1] documents: scenario identity and counts
    are structural (Breaking), [p_exceed] drift is judged against the
    baseline's own delta-method CI (Benign within it), all other
    numerics use the bit-stability fallback.  Raises
    {!Vjson.Parse_error} on documents without the tail shape. *)

val optimize_schema : string
(** ["rgleak-optimize/1"]. *)

val compare_optimize : baseline:Vjson.t -> current:Vjson.t -> diff
(** Diffs two [rgleak-optimize/1] documents over the union of their
    top-level keys.  Optimizer reports are fully deterministic (no MC
    noise), so strings, booleans, and field presence are structural
    (Breaking) and every numeric field uses the bit-stability fallback
    epsilon.  Raises {!Vjson.Parse_error} on documents without a
    ["schema"] string. *)

val compare_document : baseline:Vjson.t -> current:Vjson.t -> diff
(** Dispatches on the baseline's ["schema"] field: [rgleak-tail/1]
    documents go to {!compare_tail}, [rgleak-optimize/1] to
    {!compare_optimize}, everything else to {!compare}. *)

val pp : Format.formatter -> diff -> unit
