(** Statistical equivalence tests against a Monte Carlo reference.

    The harness never compares an estimator tier to the MC reference
    with a fixed epsilon: the MC moments carry sampling error that
    shrinks as 1/√replicas, so the acceptance region must shrink with
    it.  A tier estimate [v] is {e equivalent} to an MC estimate with
    confidence interval [center ± z·se] under a relative model-error
    budget [b] iff

    {[ |v − center| ≤ z·se + b·|center| ]}

    — the Welch-style z-gate of ISLE (Bayrakci et al. 2007), with the
    budget declaring how much {e systematic} model error the paper's
    accuracy claims permit (finite-size RG error, lognormal fit error),
    while the CI term absorbs the {e sampling} error of the finite MC
    run. *)

type interval = {
  center : float;
  se : float;  (** standard error of the estimate *)
  z_crit : float;  (** two-sided critical value at the chosen confidence *)
}

val interval : center:float -> se:float -> confidence:float -> interval
(** Raises [Invalid_argument] unless [se > 0] and confidence ∈ (0,1). *)

val mean_interval :
  mean:float -> std:float -> count:int -> confidence:float -> interval
(** CI of an MC sample mean over [count] replicas. *)

val std_interval :
  ?kurtosis:float -> std:float -> count:int -> confidence:float -> unit -> interval
(** CI of an MC sample standard deviation.  Without [kurtosis] the
    normal-theory SE is used; with it, the delta-method SE
    {!Rgleak_num.Stats.std_se_kurtosis} — essential for the
    right-skewed leakage sums, whose σ wobbles several times more than
    normal theory predicts. *)

val half_width : interval -> float
(** [z_crit · se]. *)

type verdict = {
  value : float;
  center : float;
  z : float;  (** (value − center) / se: sampling-error units *)
  ci_half_width : float;
  budget : float;  (** absolute widening applied to the CI *)
  pass : bool;
}

val equivalent : value:float -> reference:interval -> budget_rel:float -> verdict
(** The equivalence gate above.  Non-finite [value] never passes.
    Raises [Invalid_argument] on a negative budget. *)
