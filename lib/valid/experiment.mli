(** The validation sweep runner: paper-table reproduction.

    A {!sweep} declares a list of design points — gate count, die
    aspect ratio, within-die correlation family and range, signal
    probability (the standby input-vector mix), cell mix — plus the MC
    confidence level and per-tier model-error budgets.  {!run} executes
    every point: generates and places a seeded random design, runs the
    exact / linear / integral estimator tiers and a seeded Monte Carlo
    reference on it, computes per-tier relative errors against the
    exact tier (the shape of the paper's Tables 1–2) and
    {!Stat_test.equivalent} verdicts against the MC confidence
    intervals.

    Everything stochastic flows through {!Rgleak_num.Rng.stream} keyed
    by the master seed and the point index, and reports carry no
    wall-clock data, so a report is a pure function of [(sweep, seed)]
    — bit-identical across runs and [--jobs] values. *)

type point = {
  label : string;
  n : int;
  aspect : float;  (** die width / height *)
  family : Rgleak_process.Corr_model.wid_family;
  p : float;  (** signal probability: the standby input-vector mix *)
  mix_name : string;
  mix : (string * float) list;
  replicas : int;  (** MC reference replicas *)
}

type budget = { mean : float; std : float }
(** Relative model-error budgets (fractions of the MC center). *)

type budgets = { exact : budget; linear : budget; integral : budget }

type sweep = {
  sweep_name : string;
  confidence : float;
  budgets : budgets;
  points : point list;
}

val quick_sweep : sweep
(** Two small points; seconds on one core — the tier-1 [dune runtest]
    subset. *)

val default_sweep : sweep
(** The full paper-table sweep: design size, correlation range, aspect
    ratio, and sleep-vector dimensions. *)

val sweep_named : string -> sweep
(** ["quick"] or ["default"]; raises {!Rgleak_num.Guard.Error}
    ([Invalid_input]) otherwise. *)

val family_spec : Rgleak_process.Corr_model.wid_family -> string
(** The CLI-style spec string, e.g. ["spherical:120"]. *)

(** {2 Reports} *)

type tier_report = {
  tier : string;
  status : string;  (** ["ok"] or ["error:<class>"] *)
  mean : float option;
  std : float option;
  mean_rel_err : float option;  (** vs the exact tier *)
  std_rel_err : float option;
  mean_verdict : Stat_test.verdict option;  (** vs the MC interval *)
  std_verdict : Stat_test.verdict option;
  tier_pass : bool;
}

type mc_report = {
  mc_status : string;
  mc_mean : float option;
  mc_std : float option;
  mc_mean_ci : Stat_test.interval option;
  mc_std_ci : Stat_test.interval option;
}

type point_report = {
  point : point;
  width : float;
  height : float;
  mc : mc_report;
  tiers : tier_report list;
  point_pass : bool;
}

type report = {
  schema : string;
  seed : int;
  report_sweep : string;
  confidence : float;
  point_reports : point_report list;
  pass : bool;
}

val schema_id : string
(** ["rgleak-validate/1"]. *)

val run_point :
  ?jobs:int ->
  chars:Rgleak_cells.Characterize.cell_char array ->
  confidence:float ->
  budgets:budgets ->
  seed:int ->
  index:int ->
  point ->
  point_report

val run :
  ?jobs:int ->
  ?chars:Rgleak_cells.Characterize.cell_char array ->
  seed:int ->
  sweep ->
  report
(** Raises {!Rgleak_num.Guard.Error} ([Invalid_input]) on a sweep with
    no points — an empty sweep would otherwise vacuously pass. *)

val to_json : report -> Vjson.t
(** The [rgleak-validate/1] document; deterministic member order, no
    timestamps. *)

val write_json : path:string -> report -> unit
(** {!to_json} pretty-printed (2-space indent) to [path]. *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable per-point tables. *)
