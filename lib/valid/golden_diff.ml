(* Golden-artifact regression for validation reports.

   A committed baseline pins the numbers a known-good build produced;
   a fresh run is diffed against it structurally and numerically.
   Structural mismatches (schema, sweep, point set, tier set, statuses,
   pass flags) can only mean an intentional harness change or a broken
   estimator, so they always classify as Breaking.  Numeric drift is
   judged against the *baseline's own MC confidence interval*: movement
   within the interval is indistinguishable from sampling noise of the
   pinned run and classifies as Benign, movement beyond it means the
   code now computes something statistically different — Breaking.

   Since every quantity in a report is a pure function of (sweep,
   seed), the expected steady state is Identical, bit for bit; Benign
   drift appears only when numerics are intentionally reordered
   (e.g. a quadrature or reduction change) and tells the reviewer the
   change is within noise. *)

type severity = Identical | Benign | Breaking

type finding = {
  path : string;  (** JSON-pointer-ish location, e.g. ["points/3/tiers/1/std"] *)
  kind : severity;
  detail : string;
}

type diff = { severity : severity; findings : finding list }

let severity_name = function
  | Identical -> "identical"
  | Benign -> "benign"
  | Breaking -> "breaking"

let worst a b =
  match (a, b) with
  | Breaking, _ | _, Breaking -> Breaking
  | Benign, _ | _, Benign -> Benign
  | Identical, Identical -> Identical

(* ---------- helpers over Vjson documents ---------- *)

let jstr j key = Vjson.str (Vjson.get key j)
let jnum j key = Vjson.num (Vjson.get key j)
let jbool j key = Vjson.bool (Vjson.get key j)
let jarr j key = Vjson.arr (Vjson.get key j)

let opt_num j key =
  match Vjson.mem key j with
  | Some (Vjson.Num f) -> Some f
  | _ -> None

let breaking path detail = { path; kind = Breaking; detail }

(* The sampling-noise tolerance for a numeric field of a tier or MC
   block: the baseline MC half-width for that moment, falling back to a
   small relative epsilon for fields without a CI (rel errors, z). *)
let fallback_rel = 1e-9

let within_fallback a b =
  let scale = Float.max (Float.abs a) (Float.abs b) in
  Float.abs (a -. b) <= fallback_rel *. Float.max scale 1.0

(* ---------- field comparison ---------- *)

let diff_number ~path ~tol name base cur acc =
  match (base, cur) with
  | None, None -> acc
  | Some _, None | None, Some _ ->
    breaking (path ^ "/" ^ name) "field presence changed" :: acc
  | Some b, Some c ->
    if b = c then acc
    else
      let d = Float.abs (c -. b) in
      let kind =
        match tol with
        | Some t when d <= t -> Benign
        | Some _ -> Breaking
        | None -> if within_fallback b c then Benign else Breaking
      in
      let detail =
        Printf.sprintf "%.17g -> %.17g (|d| = %.3g%s)" b c d
          (match tol with
          | Some t -> Printf.sprintf ", tolerance %.3g" t
          | None -> "")
      in
      { path = path ^ "/" ^ name; kind; detail } :: acc

let diff_flag ~path name base cur acc =
  if base = cur then acc
  else
    breaking (path ^ "/" ^ name)
      (Printf.sprintf "%b -> %b" base cur)
    :: acc

let diff_string ~path name base cur acc =
  if String.equal base cur then acc
  else
    breaking (path ^ "/" ^ name) (Printf.sprintf "%S -> %S" base cur) :: acc

(* ---------- tier / point / report comparison ---------- *)

(* CI half-widths from the *baseline* MC block: z_crit recovered from
   the report's confidence level. *)
let mc_half_widths ~confidence base_mc =
  let z =
    Rgleak_num.Special.normal_quantile (0.5 +. (confidence /. 2.0))
  in
  let hw key = Option.map (fun se -> z *. se) (opt_num base_mc key) in
  (hw "mean_se", hw "std_se")

let diff_verdict ~path base cur acc =
  (* Verdict sub-objects: the pass flag is structural; the numeric
     members follow the enclosing tolerances only through the values
     they derive from, so compare them with the fallback epsilon. *)
  match (base, cur) with
  | Vjson.Null, Vjson.Null -> acc
  | Vjson.Null, _ | _, Vjson.Null ->
    breaking path "verdict presence changed" :: acc
  | b, c ->
    let acc = diff_flag ~path "pass" (jbool b "pass") (jbool c "pass") acc in
    List.fold_left
      (fun acc key ->
        diff_number ~path ~tol:None key (opt_num b key) (opt_num c key) acc)
      acc
      [ "value"; "center"; "z"; "ci_half_width"; "budget" ]

let diff_tier ~path ~mean_hw ~std_hw base cur acc =
  let acc = diff_string ~path "tier" (jstr base "tier") (jstr cur "tier") acc in
  let acc =
    diff_string ~path "status" (jstr base "status") (jstr cur "status") acc
  in
  let acc = diff_flag ~path "pass" (jbool base "pass") (jbool cur "pass") acc in
  let acc =
    diff_number ~path ~tol:mean_hw "mean" (opt_num base "mean")
      (opt_num cur "mean") acc
  in
  let acc =
    diff_number ~path ~tol:std_hw "std" (opt_num base "std")
      (opt_num cur "std") acc
  in
  let acc =
    List.fold_left
      (fun acc key ->
        diff_number ~path ~tol:None key (opt_num base key) (opt_num cur key)
          acc)
      acc
      [ "mean_rel_err"; "std_rel_err" ]
  in
  let acc =
    diff_verdict ~path:(path ^ "/mean_equiv") (Vjson.get "mean_equiv" base)
      (Vjson.get "mean_equiv" cur) acc
  in
  diff_verdict ~path:(path ^ "/std_equiv") (Vjson.get "std_equiv" base)
    (Vjson.get "std_equiv" cur) acc

let diff_point ~confidence ~index base cur acc =
  let path = Printf.sprintf "points/%d" index in
  let acc = diff_string ~path "label" (jstr base "label") (jstr cur "label") acc in
  if acc <> [] && (List.hd acc).path = path ^ "/label" then
    (* Point identity changed: comparing the rest field-by-field would
       only cascade noise. *)
    acc
  else begin
    let acc =
      List.fold_left
        (fun acc key ->
          diff_number ~path ~tol:None key (opt_num base key) (opt_num cur key)
            acc)
        acc
        [ "n"; "aspect"; "p"; "replicas"; "width"; "height" ]
    in
    let acc =
      diff_string ~path "corr" (jstr base "corr") (jstr cur "corr") acc
    in
    let acc = diff_string ~path "mix" (jstr base "mix") (jstr cur "mix") acc in
    let acc = diff_flag ~path "pass" (jbool base "pass") (jbool cur "pass") acc in
    let base_mc = Vjson.get "mc" base and cur_mc = Vjson.get "mc" cur in
    let mc_path = path ^ "/mc" in
    let acc =
      diff_string ~path:mc_path "status" (jstr base_mc "status")
        (jstr cur_mc "status") acc
    in
    let mean_hw, std_hw = mc_half_widths ~confidence base_mc in
    let acc =
      diff_number ~path:mc_path ~tol:mean_hw "mean" (opt_num base_mc "mean")
        (opt_num cur_mc "mean") acc
    in
    let acc =
      diff_number ~path:mc_path ~tol:std_hw "std" (opt_num base_mc "std")
        (opt_num cur_mc "std") acc
    in
    let acc =
      List.fold_left
        (fun acc key ->
          diff_number ~path:mc_path ~tol:None key (opt_num base_mc key)
            (opt_num cur_mc key) acc)
        acc
        [ "mean_se"; "std_se" ]
    in
    let base_tiers = jarr base "tiers" and cur_tiers = jarr cur "tiers" in
    if List.length base_tiers <> List.length cur_tiers then
      breaking (path ^ "/tiers")
        (Printf.sprintf "tier count %d -> %d" (List.length base_tiers)
           (List.length cur_tiers))
      :: acc
    else
      List.fold_left2
        (fun (acc, i) b c ->
          ( diff_tier
              ~path:(Printf.sprintf "%s/tiers/%d" path i)
              ~mean_hw ~std_hw b c acc,
            i + 1 ))
        (acc, 0) base_tiers cur_tiers
      |> fst
  end

let compare ~baseline ~current =
  let findings =
    let acc = [] in
    let acc =
      diff_string ~path:"" "schema" (jstr baseline "schema")
        (jstr current "schema") acc
    in
    if acc <> [] then acc
    else begin
      let acc =
        diff_string ~path:"" "sweep" (jstr baseline "sweep")
          (jstr current "sweep") acc
      in
      let acc =
        diff_number ~path:"" ~tol:None "seed"
          (opt_num baseline "seed") (opt_num current "seed") acc
      in
      let acc =
        diff_number ~path:"" ~tol:None "confidence"
          (opt_num baseline "confidence") (opt_num current "confidence") acc
      in
      let acc =
        diff_flag ~path:"" "pass" (jbool baseline "pass")
          (jbool current "pass") acc
      in
      let confidence = jnum baseline "confidence" in
      let base_points = jarr baseline "points"
      and cur_points = jarr current "points" in
      if List.length base_points <> List.length cur_points then
        breaking "points"
          (Printf.sprintf "point count %d -> %d" (List.length base_points)
             (List.length cur_points))
        :: acc
      else
        List.fold_left2
          (fun (acc, i) b c ->
            (diff_point ~confidence ~index:i b c acc, i + 1))
          (acc, 0) base_points cur_points
        |> fst
    end
  in
  let findings = List.rev findings in
  let severity =
    List.fold_left (fun s f -> worst s f.kind) Identical findings
  in
  { severity; findings }

(* ---------- tail documents (rgleak-tail/1) ---------- *)

(* Same classification philosophy as the validation reports: scenario
   identity and integer counts are structural (Breaking on any change);
   the probability estimate is judged against the *baseline's own*
   delta-method CI (drift within it is sampling-noise-equivalent, so
   Benign); every other numeric field gets the bit-stability fallback,
   since in steady state the document is a pure function of its
   arguments. *)

let tail_schema = "rgleak-tail/1"

let compare_tail ~baseline ~current =
  let findings =
    let acc = [] in
    let acc =
      diff_string ~path:"" "schema" (jstr baseline "schema")
        (jstr current "schema") acc
    in
    if acc <> [] then acc
    else begin
      let acc =
        List.fold_left
          (fun acc key ->
            diff_string ~path:"" key (jstr baseline key) (jstr current key)
              acc)
          acc [ "corr"; "mix" ]
      in
      let acc =
        List.fold_left
          (fun acc key ->
            diff_number ~path:"" ~tol:None key (opt_num baseline key)
              (opt_num current key) acc)
          acc
          [ "n"; "p"; "seed"; "replicas"; "confidence"; "budget_na"; "hits" ]
      in
      let p_tol =
        match (opt_num baseline "se", opt_num baseline "confidence") with
        | Some se, Some conf when se > 0.0 ->
          let z =
            Rgleak_num.Special.normal_quantile (0.5 +. (conf /. 2.0))
          in
          Some (z *. se)
        | _ -> None
      in
      let acc =
        diff_number ~path:"" ~tol:p_tol "p_exceed"
          (opt_num baseline "p_exceed") (opt_num current "p_exceed") acc
      in
      let acc =
        List.fold_left
          (fun acc key ->
            diff_number ~path:"" ~tol:None key (opt_num baseline key)
              (opt_num current key) acc)
          acc
          [
            "se"; "ci_lo"; "ci_hi"; "wilson_lo"; "wilson_hi"; "hit_rate";
            "ess"; "mean_weight"; "max_weight"; "delta_nm"; "shift_norm2";
            "analytic_p";
          ]
      in
      let base_qs = jarr baseline "quantiles"
      and cur_qs = jarr current "quantiles" in
      if List.length base_qs <> List.length cur_qs then
        breaking "quantiles"
          (Printf.sprintf "quantile count %d -> %d" (List.length base_qs)
             (List.length cur_qs))
        :: acc
      else
        List.fold_left2
          (fun (acc, i) b c ->
            let path = Printf.sprintf "quantiles/%d" i in
            let acc =
              diff_number ~path ~tol:None "level" (opt_num b "level")
                (opt_num c "level") acc
            in
            let acc =
              diff_number ~path ~tol:None "leakage_na"
                (opt_num b "leakage_na") (opt_num c "leakage_na") acc
            in
            (acc, i + 1))
          (acc, 0) base_qs cur_qs
        |> fst
    end
  in
  let findings = List.rev findings in
  let severity =
    List.fold_left (fun s f -> worst s f.kind) Identical findings
  in
  { severity; findings }

(* ---------- optimize documents (rgleak-optimize/1) ---------- *)

(* The optimizer report is fully deterministic — a pure function of
   (scenario, seed, budget) with no Monte Carlo noise anywhere — so
   there is no CI to judge drift against: strings and field presence
   are structural (Breaking), every numeric field gets the
   bit-stability fallback epsilon.  The comparison walks the union of
   top-level keys, so adding or dropping a field is loud. *)

let optimize_schema = "rgleak-optimize/1"

let compare_optimize ~baseline ~current =
  let keys_of = function
    | Vjson.Obj kvs -> List.map fst kvs
    | _ -> []
  in
  let keys =
    List.sort_uniq String.compare (keys_of baseline @ keys_of current)
  in
  let findings =
    let acc = [] in
    let acc =
      diff_string ~path:"" "schema" (jstr baseline "schema")
        (jstr current "schema") acc
    in
    if acc <> [] then acc
    else
      List.fold_left
        (fun acc key ->
          match (Vjson.mem key baseline, Vjson.mem key current) with
          | None, None -> acc
          | Some _, None | None, Some _ ->
            breaking ("/" ^ key) "field presence changed" :: acc
          | Some (Vjson.Str b), Some (Vjson.Str c) ->
            diff_string ~path:"" key b c acc
          | Some (Vjson.Num b), Some (Vjson.Num c) ->
            diff_number ~path:"" ~tol:None key (Some b) (Some c) acc
          | Some (Vjson.Bool b), Some (Vjson.Bool c) ->
            diff_flag ~path:"" key b c acc
          | Some b, Some c ->
            if b = c then acc
            else breaking ("/" ^ key) "structured field changed" :: acc)
        acc keys
  in
  let findings = List.rev findings in
  let severity =
    List.fold_left (fun s f -> worst s f.kind) Identical findings
  in
  { severity; findings }

(* Schema-dispatching entry point: tail and optimize documents route
   to their comparators, everything else to the validation-report
   comparator. *)
let compare_document ~baseline ~current =
  match Vjson.mem "schema" baseline with
  | Some (Vjson.Str s) when String.equal s tail_schema ->
    compare_tail ~baseline ~current
  | Some (Vjson.Str s) when String.equal s optimize_schema ->
    compare_optimize ~baseline ~current
  | _ -> compare ~baseline ~current

let pp fmt d =
  (match d.severity with
  | Identical -> Format.fprintf fmt "golden: identical@."
  | Benign ->
    Format.fprintf fmt
      "golden: benign drift (%d finding(s), all within MC sampling noise)@."
      (List.length d.findings)
  | Breaking ->
    Format.fprintf fmt "golden: BREAKING drift (%d finding(s))@."
      (List.length d.findings));
  List.iter
    (fun f ->
      Format.fprintf fmt "  [%s] %s: %s@." (severity_name f.kind) f.path
        f.detail)
    d.findings
