(* Hierarchical estimation over a heterogeneous floorplan - an
   extension of the paper's single homogeneous RG array.  Each block
   carries its own cell mix and density; within-block variances use the
   paper's Eq. 20 integral and cross-block covariances integrate the
   cross-RG covariance over block-pair geometry.  The cross share shows
   how wrong a blocks-are-independent assumption would be.

     dune exec examples/hierarchical_floorplan.exe *)

open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core

let () =
  let corr =
    Corr_model.create
      (Corr_model.Spherical { dmax = 200.0 })
      Process_param.default_channel_length
  in
  let chars = Characterize.default_library () in

  let logic_mix =
    Histogram.of_weights
      [
        ("INV_X1", 20.0); ("NAND2_X1", 18.0); ("NOR2_X1", 8.0);
        ("XOR2_X1", 4.0); ("AOI21_X1", 4.0); ("DFF_X1", 10.0);
      ]
  in
  let datapath_mix =
    Histogram.of_weights
      [
        ("FA_X1", 20.0); ("HA_X1", 8.0); ("MUX2_X1", 10.0); ("XOR2_X1", 10.0);
        ("AND2_X1", 8.0); ("INV_X2", 10.0); ("DFF_X1", 12.0);
      ]
  in
  let sram_mix = Histogram.of_weights [ ("SRAM6T", 1.0) ] in

  (* a 1 x 0.6 mm die: control logic strip, datapath, and an SRAM macro *)
  let regions =
    [
      Multi_region.region ~label:"control" ~histogram:logic_mix ~n:60_000
        ~x:0.0 ~y:0.0 ~width:1000.0 ~height:200.0 ();
      Multi_region.region ~label:"datapath" ~histogram:datapath_mix ~n:45_000
        ~x:0.0 ~y:200.0 ~width:600.0 ~height:400.0 ();
      Multi_region.region ~label:"sram" ~histogram:sram_mix ~n:262_144
        ~x:600.0 ~y:200.0 ~width:400.0 ~height:400.0 ();
    ]
  in

  let r = Multi_region.estimate ~chars ~corr regions in
  Format.printf "floorplan estimate:@.";
  Array.iter
    (fun (label, mean) ->
      Format.printf "  %-10s mean %10.1f uA@." label (mean /. 1000.0))
    r.Multi_region.region_means;
  Format.printf "  %-10s mean %10.1f uA@." "total" (r.Multi_region.mean /. 1000.0);
  Format.printf "  sigma %.1f uA (%.1f%% of mean)@."
    (r.Multi_region.std /. 1000.0)
    (100.0 *. r.Multi_region.std /. r.Multi_region.mean);
  Format.printf
    "  cross-region covariance carries %.0f%% of the total variance@."
    (100.0 *. r.Multi_region.cross_share);

  (* what a naive independent-blocks roll-up would report *)
  let indep_var =
    List.fold_left
      (fun acc (reg : Multi_region.region) ->
        let one = Multi_region.estimate ~chars ~corr [ reg ] in
        acc +. one.Multi_region.variance)
      0.0 regions
  in
  Format.printf
    "@.independent-blocks roll-up would claim sigma = %.1f uA; the true@."
    (sqrt indep_var /. 1000.0);
  Format.printf
    "spread is %.0f%% larger: within-die correlation and the shared D2D@."
    (100.0 *. ((r.Multi_region.std /. sqrt indep_var) -. 1.0));
  Format.printf "component couple the blocks.@."
