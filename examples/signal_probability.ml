(* Signal-probability study (section 2.1.4 / Fig. 3): a single gate's
   leakage can vary 10x or more across input states, but at the chip
   level the state effects average out.  The paper's conservative policy
   characterizes every state and picks the probability setting that
   maximizes the design's mean leakage.

     dune exec examples/signal_probability.exe *)

open Rgleak_device
open Rgleak_cells
open Rgleak_circuit

let () =
  let env = Mosfet.default_env in
  let chars = Characterize.default_library () in

  (* Per-gate state spread: the motivation. *)
  Format.printf "Per-gate input-state spread (nominal L):@.";
  List.iter
    (fun name ->
      let cell = Library.find name in
      let lo = ref infinity and hi = ref 0.0 in
      Array.iter
        (fun state ->
          let i = Cell.leakage ~env cell state in
          if i < !lo then lo := i;
          if i > !hi then hi := i)
        (Cell.states cell);
      Format.printf "  %-10s %8.4f .. %8.4f nA  (%.0fx)@." name !lo !hi
        (!hi /. !lo))
    [ "NAND2_X1"; "NAND4_X1"; "NOR4_X1"; "AOI211_X1" ];

  (* Chip-level flattening (Fig. 3). *)
  let histogram =
    Histogram.of_weights
      [
        ("INV_X1", 20.0); ("NAND2_X1", 18.0); ("NOR2_X1", 8.0);
        ("NAND4_X1", 4.0); ("NOR4_X1", 4.0); ("XOR2_X1", 4.0);
        ("DFF_X1", 10.0);
      ]
  in
  let weights = Histogram.to_array histogram in
  Format.printf "@.Chip-level mean leakage per gate vs signal probability:@.";
  Array.iter
    (fun (p, v) -> Format.printf "  p = %.2f  mean = %.4f nA/gate@." p v)
    (Signal_prob.sweep ~points:11 chars ~weights);

  let p_star = Signal_prob.maximizing_p chars ~weights in
  let at p = Signal_prob.design_mean chars ~weights ~p in
  Format.printf
    "@.conservative setting: p* = %.2f (mean %.4f nA/gate; at p = 0.5 it@."
    p_star (at p_star);
  Format.printf
    "would be %.4f nA/gate) - a %.1f%% margin instead of a 10x guess.@."
    (at 0.5)
    (100.0 *. ((at p_star /. at 0.5) -. 1.0))
