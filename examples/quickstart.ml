(* Quickstart: estimate the leakage statistics of a candidate design
   from nothing but its high-level characteristics.

     dune exec examples/quickstart.exe

   The three inputs of Fig. 1:
   1. process information  -> Process_param + Corr_model
   2. cell library         -> Characterize.default_library
   3. design information   -> histogram + gate count + die dimensions *)

open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core

let () =
  (* 1. Process: 90 nm-class channel-length variation, equal D2D/WID
     split, within-die correlation decaying (spherically) to zero over
     120 um. *)
  let corr =
    Corr_model.create
      (Corr_model.Spherical { dmax = 120.0 })
      Process_param.default_channel_length
  in

  (* 2. Standard-cell library, pre-characterized for leakage (62 cells,
     every input state; memoized after the first call). *)
  let chars = Characterize.default_library () in

  (* 3. The candidate design: expected cell mix, gate count and die
     size.  At this point no netlist exists - this is early mode. *)
  let histogram =
    Histogram.of_weights
      [
        ("INV_X1", 22.0); ("NAND2_X1", 18.0); ("NOR2_X1", 9.0);
        ("AND2_X1", 8.0); ("XOR2_X1", 5.0); ("AOI21_X1", 4.0);
        ("BUF_X1", 6.0); ("MUX2_X1", 3.0); ("DFF_X1", 10.0);
      ]
  in
  let spec =
    { Estimate.histogram; n = 250_000; width = 2000.0; height = 2000.0 }
  in

  let result = Estimate.early ~chars ~corr ~with_vt:true spec in

  Format.printf "Candidate design: %d gates on a %.1f x %.1f mm die@."
    spec.Estimate.n
    (spec.Estimate.width /. 1000.0)
    (spec.Estimate.height /. 1000.0);
  Format.printf "  %a@." Estimate.pp_result result;
  Format.printf "  leakage budget check: mean + 3 sigma = %.1f uA@."
    ((result.Estimate.mean +. (3.0 *. result.Estimate.std)) /. 1000.0);
  Format.printf
    "  (the estimate ran in constant time via the polar integral, Eqs. 25-26)@."
