(* Spatial-correlation model study: how the within-die correlation
   family and range change the chip-level sigma, and when the O(1)
   polar method (Eqs. 24-26) is admissible.

     dune exec examples/correlation_models.exe *)

open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core

let () =
  let param = Process_param.default_channel_length in
  let chars = Characterize.default_library () in
  let histogram =
    Histogram.of_weights
      [ ("INV_X1", 20.0); ("NAND2_X1", 18.0); ("NOR2_X1", 8.0); ("DFF_X1", 10.0) ]
  in
  let n = 40_000 in
  let layout = Layout.square ~n () in
  let w = Layout.width layout and h = Layout.height layout in
  Format.printf "design: %d gates on %.0f x %.0f um@.@." n w h;

  Format.printf "%-34s %12s %10s %8s@." "correlation model" "sigma (nA)"
    "% of mean" "polar?";
  let study label fam =
    let corr = Corr_model.create fam param in
    let ctx = Estimate.context ~chars ~corr ~histogram () in
    let r =
      Estimate.run
        ~method_:
          (if Estimator_integral.polar_applicable ~corr ~width:w ~height:h then
             Estimate.Integral_polar
           else Estimate.Integral_2d)
        ctx
        { Estimate.histogram; n; width = w; height = h }
    in
    Format.printf "%-34s %12.4g %9.2f%% %8s@." label r.Estimate.std
      (100.0 *. r.Estimate.std /. r.Estimate.mean)
      (if Estimator_integral.polar_applicable ~corr ~width:w ~height:h then
         "yes"
       else "2-D")
  in
  study "linear, dmax = 60 um" (Corr_model.Linear { dmax = 60.0 });
  study "linear, dmax = 120 um" (Corr_model.Linear { dmax = 120.0 });
  study "linear, dmax = 240 um" (Corr_model.Linear { dmax = 240.0 });
  study "spherical, dmax = 120 um" (Corr_model.Spherical { dmax = 120.0 });
  study "gaussian, range = 80 um" (Corr_model.Gaussian { range = 80.0 });
  study "exponential, range = 60 um" (Corr_model.Exponential { range = 60.0 });
  study "trunc-exp, 60/120 um"
    (Corr_model.Truncated_exponential { range = 60.0; dmax = 120.0 });

  (* The D2D floor dominates at long range regardless of family. *)
  let corr = Corr_model.create (Corr_model.Linear { dmax = 120.0 }) param in
  Format.printf
    "@.D2D floor: rho(d) never drops below %.2f - a perfectly shared@."
    (Corr_model.floor corr);
  Format.printf
    "die-to-die component keeps sigma growing with n even when the WID@.";
  Format.printf "correlation has died out (Eq. 26's constant term).@."
