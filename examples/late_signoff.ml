(* Late-mode sign-off: a placed netlist exists, its high-level
   characteristics are EXTRACTED (histogram, gate count, die size), and
   the RG model predicts the leakage statistics in O(n) / O(1) time.
   The O(n^2) pairwise "true leakage" is also computed as the reference,
   exactly as in Table 1 of the paper.

     dune exec examples/late_signoff.exe *)

open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core

let () =
  let corr =
    Corr_model.create
      (Corr_model.Spherical { dmax = 120.0 })
      Process_param.default_channel_length
  in
  let chars = Characterize.default_library () in

  let spec = Benchmarks.find "c5315" in
  let placed = Benchmarks.placed spec in
  Format.printf "Sign-off of %s: %s@." spec.Benchmarks.name
    spec.Benchmarks.description;
  Format.printf "  %a@." Netlist.pp_summary placed.Placer.netlist;

  (* Late-mode extraction: the only design inputs the model needs. *)
  let histogram, n, width, height = Placer.extract_characteristics placed in
  Format.printf "  extracted: %d gates on %.0f x %.0f um, %d distinct cells@."
    n width height
    (List.length (Histogram.support histogram));

  (* RG estimate from the extracted characteristics. *)
  let estimate = Estimate.late ~chars ~corr placed in
  Format.printf "@.RG estimate     : %a@." Estimate.pp_result estimate;

  (* The expensive reference: sum of pairwise covariances over every
     gate pair of the actual placement. *)
  let reference = Estimate.true_leakage ~chars ~corr placed in
  Format.printf "true (pairwise) : %a@." Estimate.pp_result reference;

  let err_std =
    100.0
    *. Float.abs
         ((estimate.Estimate.std -. reference.Estimate.std)
         /. reference.Estimate.std)
  in
  let err_mean =
    100.0
    *. Float.abs
         ((estimate.Estimate.mean -. reference.Estimate.mean)
         /. reference.Estimate.mean)
  in
  Format.printf "@.errors: mean %.4f%%, std %.2f%% (Table 1 reports 0.23%% for c5315)@."
    err_mean err_std;

  (* Corner reporting for sign-off. *)
  let z97 = 1.959964 in
  Format.printf "@.statistical corners (normal approximation):@.";
  Format.printf "  typical       : %.2f uA@." (estimate.Estimate.mean /. 1000.0);
  Format.printf "  97.5%% corner  : %.2f uA@."
    ((estimate.Estimate.mean +. (z97 *. estimate.Estimate.std)) /. 1000.0);
  Format.printf "  mean + 3sigma : %.2f uA@."
    ((estimate.Estimate.mean +. (3.0 *. estimate.Estimate.std)) /. 1000.0);

  (* Process/temperature corners: the statistical model handles the
     within-corner spread; corners move the center. *)
  let spec_of = Estimate.spec_of_placed placed in
  let corner_results =
    Corners.analyze ~param:Process_param.default_channel_length ~corr
      ~spec:spec_of ()
  in
  Format.printf "@.process/temperature corner table:@.%a" Corners.pp
    corner_results
