(* The whole toolchain on one circuit, end to end:

   .bench file -> parse -> technology map -> place -> extract ->
   RG estimate (+ exact reference) -> distribution & yield ->
   sleep vector -> export to Verilog.

     dune exec examples/full_flow.exe [FILE.bench]

   Without an argument it uses data/c17.bench if present, or an inline
   copy of c17. *)

open Rgleak_num
open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core

let c17_inline =
  {|# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
|}

let () =
  (* 1. read the netlist *)
  let bench =
    match Sys.argv with
    | [| _; path |] -> Bench_format.parse_file path
    | _ ->
      if Sys.file_exists "data/c17.bench" then
        Bench_format.parse_file "data/c17.bench"
      else Bench_format.parse_string ~name:"c17" c17_inline
  in
  Format.printf "1. parsed %s: %d gates, %d inputs, %d outputs@."
    bench.Bench_format.name
    (Bench_format.gate_count bench)
    (List.length bench.Bench_format.primary_inputs)
    (List.length bench.Bench_format.primary_outputs);

  (* 2. technology-map onto the 62-cell library *)
  let netlist, report = Techmap.map bench in
  Format.printf "2. mapped to %d library cells (%d native, %d decomposed)@."
    (Netlist.size netlist) report.Techmap.native report.Techmap.decomposed;

  (* 3. place on a die sized from cell area *)
  let side = sqrt (Netlist.total_area netlist /. 0.7) in
  let layout = Layout.of_dims ~n:(Netlist.size netlist) ~width:side ~height:side in
  let rng = Rng.create ~seed:42 () in
  let placed = Placer.place ~strategy:Placer.Random ~rng netlist layout in
  Format.printf "3. placed on %.1f x %.1f um@." (Layout.width layout)
    (Layout.height layout);

  (* 4. process + characterized library, then estimate *)
  let corr =
    Corr_model.create
      (Corr_model.Spherical { dmax = 120.0 })
      Process_param.default_channel_length
  in
  let chars = Characterize.default_library () in
  let estimate = Estimate.late ~chars ~corr ~with_vt:true placed in
  Format.printf "4. RG estimate: %a@." Estimate.pp_result estimate;
  let reference = Estimate.true_leakage ~chars ~corr placed in
  Format.printf "   exact check: std %.4g (RG error %.2f%%)@."
    reference.Estimate.std
    (100.0
    *. Float.abs
         ((estimate.Estimate.std -. reference.Estimate.std)
         /. reference.Estimate.std));

  (* 5. distribution and yield *)
  let d = Distribution.of_estimate estimate in
  Format.printf "5. P99 leakage: %.4g nA; budget for 99.9%% yield: %.4g nA@."
    (Distribution.quantile d 0.99)
    (Distribution.budget_for_yield d ~yield:0.999);

  (* 6. standby sleep vector *)
  let sim = Sleep_vector.compile ~chars netlist in
  let sv = Sleep_vector.search ~restarts:4 ~rng sim in
  Format.printf "6. sleep vector: %.4g nA standby (%.1f%% below random parking)@."
    sv.Sleep_vector.cost
    (100.0 *. sv.Sleep_vector.improvement);

  (* 7. export the mapped netlist as structural Verilog *)
  let v = Verilog.to_string (Verilog.of_netlist netlist) in
  Format.printf "7. Verilog export (%d lines), first instance:@."
    (List.length (String.split_on_char '\n' v));
  let first_instance =
    List.find_opt
      (fun line ->
        let t = String.trim line in
        String.length t > 2 && String.contains t '.' && String.contains t '(')
      (String.split_on_char '\n' v)
  in
  match first_instance with
  | Some line -> Format.printf "   %s@." (String.trim line)
  | None -> ()
