(* Yield analysis: from the estimated (mean, sigma) of full-chip
   leakage to quantiles, budgets and parametric yield.  The RG model
   gives the moments in constant time; a lognormal matched to them
   (validated against brute-force Monte Carlo in the test suite)
   answers the questions a product team actually asks.

     dune exec examples/yield_analysis.exe *)

open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core

let () =
  let corr =
    Corr_model.create
      (Corr_model.Spherical { dmax = 120.0 })
      Process_param.default_channel_length
  in
  let chars = Characterize.default_library () in
  let histogram =
    Histogram.of_weights
      [
        ("INV_X1", 20.0); ("NAND2_X1", 18.0); ("NOR2_X1", 8.0);
        ("XOR2_X1", 4.0); ("AOI21_X1", 4.0); ("DFF_X1", 10.0);
      ]
  in
  let spec =
    { Estimate.histogram; n = 500_000; width = 2800.0; height = 2800.0 }
  in
  let r = Estimate.early ~chars ~corr ~with_vt:true spec in
  Format.printf "design: %d gates; estimated mean %.1f uA, sigma %.1f uA@.@."
    spec.Estimate.n
    (r.Estimate.mean /. 1000.0)
    (r.Estimate.std /. 1000.0);

  let d = Distribution.of_estimate r in
  Format.printf "leakage distribution: %a@.@." Distribution.pp d;

  Format.printf "quantiles (lognormal vs normal approximation):@.";
  let dn = Distribution.of_estimate ~shape:Distribution.Normal r in
  List.iter
    (fun q ->
      Format.printf "  P%.1f : %8.1f uA   (normal: %8.1f uA)@." (100.0 *. q)
        (Distribution.quantile d q /. 1000.0)
        (Distribution.quantile dn q /. 1000.0))
    [ 0.5; 0.9; 0.99; 0.999 ];
  Format.printf
    "  (the lognormal right tail is heavier - the D2D component@.";
  Format.printf "   multiplies every gate's leakage by a shared factor)@.@.";

  Format.printf "parametric yield against a leakage budget:@.";
  List.iter
    (fun budget_ua ->
      Format.printf "  budget %6.0f uA -> yield %6.2f%%@." budget_ua
        (100.0 *. Distribution.yield d ~budget:(budget_ua *. 1000.0)))
    [ 1200.0; 1500.0; 1800.0; 2200.0 ];
  Format.printf "@.budget needed for 99%% yield: %.0f uA@."
    (Distribution.budget_for_yield d ~yield:0.99 /. 1000.0)
