(* Temperature study: how full-chip leakage moves with junction
   temperature, and what the worst process/temperature corner looks
   like.  The statistical model handles within-corner variation; corners
   shift the center (device-model extension: Mosfet.env_at).

     dune exec examples/temperature_study.exe *)

open Rgleak_device
open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core

let () =
  let param = Process_param.default_channel_length in
  let corr = Corr_model.create (Corr_model.Spherical { dmax = 120.0 }) param in
  let histogram =
    Histogram.of_weights
      [
        ("INV_X1", 20.0); ("NAND2_X1", 18.0); ("NOR2_X1", 8.0);
        ("XOR2_X1", 4.0); ("DFF_X1", 10.0);
      ]
  in
  let n = 100_000 in
  let layout = Layout.square ~n () in
  let spec =
    {
      Estimate.histogram;
      n;
      width = Layout.width layout;
      height = Layout.height layout;
    }
  in

  Format.printf "full-chip leakage vs junction temperature (%d gates):@." n;
  Format.printf "  %6s %12s %12s %10s@." "T (C)" "mean (uA)" "sigma (uA)"
    "vs 25C";
  let mean_25 = ref 0.0 in
  List.iter
    (fun temp_c ->
      let env = Mosfet.env_at ~temp_k:(273.15 +. temp_c) () in
      let chars =
        Characterize.characterize_library ~l_points:49 ~mc_samples:500 ~env
          ~param ~seed:1729 ()
      in
      let r = Estimate.early ~p:0.5 ~chars ~corr spec in
      if temp_c = 25.0 then mean_25 := r.Estimate.mean;
      Format.printf "  %6.0f %12.1f %12.1f %9.1fx@." temp_c
        (r.Estimate.mean /. 1000.0)
        (r.Estimate.std /. 1000.0)
        (r.Estimate.mean /. !mean_25))
    [ 25.0; 50.0; 75.0; 100.0; 125.0 ];

  Format.printf
    "@.sign-off corner table (process shift x temperature, worst first):@.";
  let results = Corners.analyze ~param ~corr ~spec () in
  Format.printf "%a" Corners.pp results;
  let w = Corners.worst results in
  Format.printf
    "@.the %s corner sets the budget: %.1f uA at mean + 3 sigma -- %.0fx@."
    w.Corners.corner.Corners.name
    (w.Corners.p3sigma /. 1000.0)
    (w.Corners.p3sigma /. !mean_25);
  Format.printf "the typical-corner mean.  Leakage sign-off lives at FF/hot.@."
