(* Early-mode design planning: the use case that motivates the paper's
   introduction.  Before any netlist exists, compare candidate
   implementations of a block - different cell mixes, gate counts and
   floorplans - against a leakage budget, so the leakage constraint can
   inform architecture decisions instead of being a sign-off surprise.

     dune exec examples/early_planning.exe *)

open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core

type candidate = {
  label : string;
  mix : (string * float) list;
  gates : int;
  die_mm : float;
}

let candidates =
  [
    {
      label = "A: high-speed (low-Vt-like sizing, buffer heavy)";
      mix =
        [
          ("INV_X2", 14.0); ("INV_X4", 6.0); ("NAND2_X2", 16.0);
          ("NOR2_X2", 8.0); ("BUF_X4", 8.0); ("XOR2_X2", 5.0);
          ("AOI21_X2", 5.0); ("DFF_X2", 12.0); ("CLKBUF_X4", 3.0);
        ];
      gates = 180_000;
      die_mm = 1.6;
    }
    ;
    {
      label = "B: balanced";
      mix =
        [
          ("INV_X1", 20.0); ("NAND2_X1", 18.0); ("NOR2_X1", 8.0);
          ("AND2_X1", 8.0); ("XOR2_X1", 4.0); ("AOI21_X1", 4.0);
          ("BUF_X1", 5.0); ("DFF_X1", 10.0); ("CLKBUF_X2", 2.0);
        ];
      gates = 200_000;
      die_mm = 1.6;
    }
    ;
    {
      label = "C: area-optimized (complex gates, deeper stacks)";
      mix =
        [
          ("INV_X1", 14.0); ("NAND3_X1", 10.0); ("NAND4_X1", 6.0);
          ("NOR3_X1", 8.0); ("AOI22_X1", 8.0); ("OAI22_X1", 8.0);
          ("AOI211_X1", 4.0); ("DFF_X1", 10.0); ("MUX2_X1", 4.0);
        ];
      gates = 150_000;
      die_mm = 1.3;
    }
    ;
  ]

let budget_ua = 400.0 (* mean + 3 sigma budget for the block *)

let () =
  let corr =
    Corr_model.create
      (Corr_model.Spherical { dmax = 120.0 })
      Process_param.default_channel_length
  in
  let chars = Characterize.default_library () in
  Format.printf
    "Early-mode leakage planning (budget: mean + 3 sigma <= %.0f uA)@.@."
    budget_ua;
  List.iter
    (fun c ->
      let die = c.die_mm *. 1000.0 in
      let spec =
        {
          Estimate.histogram = Histogram.of_weights c.mix;
          n = c.gates;
          width = die;
          height = die;
        }
      in
      let r = Estimate.early ~chars ~corr ~with_vt:true spec in
      let corner = (r.Estimate.mean +. (3.0 *. r.Estimate.std)) /. 1000.0 in
      Format.printf "%s@." c.label;
      Format.printf "  %d gates, %.1f x %.1f mm, signal-prob setting: worst case@."
        c.gates c.die_mm c.die_mm;
      Format.printf "  mean = %.1f uA, sigma = %.1f uA (%.1f%%)@."
        (r.Estimate.mean /. 1000.0)
        (r.Estimate.std /. 1000.0)
        (100.0 *. r.Estimate.std /. r.Estimate.mean);
      Format.printf "  mean + 3 sigma = %.1f uA -> %s@.@." corner
        (if corner <= budget_ua then "within budget"
         else "OVER BUDGET: rework needed");
      ())
    candidates;
  Format.printf
    "Each estimate is a template over all designs sharing these@.";
  Format.printf
    "characteristics; no netlist or placement was needed (section 1).@."
