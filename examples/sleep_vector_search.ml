(* Standby-leakage reduction by sleep-vector selection.

   Section 2.1.4 of the paper shows single gates spreading 10x or more
   across input states.  When a block idles, its inputs and flop states
   are free variables: parking every gate in a low-leakage state (e.g.
   all-off NAND stacks) cuts standby power.  This example searches for
   that vector on the ISCAS85-like circuits and then re-runs the
   statistical estimator with the per-state mix the vector induces.

     dune exec examples/sleep_vector_search.exe *)

open Rgleak_num
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core

let () =
  let chars = Characterize.default_library () in
  Format.printf
    "sleep-vector search (randomized greedy, flop states included):@.@.";
  Format.printf "%-8s %9s %12s %12s %12s %8s@." "circuit" "controls"
    "random nA" "best nA" "reduction" "evals";
  List.iter
    (fun name ->
      let nl = Benchmarks.netlist (Benchmarks.find name) in
      let sim = Sleep_vector.compile ~chars nl in
      let rng = Rng.create ~seed:11 () in
      let r = Sleep_vector.search ~restarts:6 ~rng sim in
      Format.printf "%-8s %9d %12.1f %12.1f %11.1f%% %8d@." name
        (Sleep_vector.num_controls sim)
        r.Sleep_vector.random_mean r.Sleep_vector.cost
        (100.0 *. r.Sleep_vector.improvement)
        r.Sleep_vector.evaluations)
    [ "c432"; "c499"; "c880"; "c1355"; "c1908"; "c2670" ];
  Format.printf
    "@.the reduction comes from parking gates in stacked-off states: the@.";
  Format.printf
    "same stack effect that drives the per-cell sigma differences the@.";
  Format.printf "statistical model characterizes.@."
