# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench examples clean doc bench-json microbench \
        trace metrics overhead

all: build

build:
	dune build @all

test:
	dune runtest

test-verbose:
	dune runtest --force --no-buffer

bench:
	dune exec bench/main.exe

bench-fast:
	dune exec bench/main.exe -- --fast

timing:
	dune exec bench/main.exe -- --run timing

# Fast timing pass; writes BENCH_estimators.json in the working directory.
bench-json:
	dune exec bench/main.exe -- --run timing --fast

microbench:
	dune exec bench/main.exe -- --run microbench

# Telemetry demos: span/counter report on stderr, Chrome trace + metrics
# JSON files in the working directory (open trace.json in ui.perfetto.dev).
trace:
	dune exec bin/rgleak.exe -- estimate -n 2000 --trace --trace-json trace.json

metrics:
	dune exec bin/rgleak.exe -- estimate -n 2000 --metrics-json metrics.json
	@cat metrics.json

# Asserts disabled instrumentation costs < 1% on the exact hot loop.
overhead:
	dune exec bench/main.exe -- --run overhead --fast

examples:
	@for e in quickstart early_planning late_signoff signal_probability \
	          correlation_models yield_analysis hierarchical_floorplan \
	          temperature_study sleep_vector_search full_flow; do \
	  echo "== examples/$$e"; dune exec examples/$$e.exe; echo; done

clean:
	dune clean
