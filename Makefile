# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench examples clean doc bench-json microbench \
        trace metrics overhead check fault-matrix validate golden-check \
        golden-update batch-demo batch-smoke serve-smoke bench-gate \
        bench-ratchet report-demo flamegraph tail-demo optimize-demo \
        bench-delta

all: check

build:
	dune build @all

test:
	dune runtest

test-verbose:
	dune runtest --force --no-buffer

# The default gate: build, run the full test suites, then exercise the
# fault-injection matrix and the full validation sweep end to end
# through the CLI (the quick sweep already runs inside dune runtest).
check: build
	dune runtest
	$(MAKE) fault-matrix
	$(MAKE) golden-check

# 3 sites x 2 seeds of deterministic fault injection, driven through
# the real binary.  Estimator-tier faults (linear.f) must exit 3 under
# --strict and recover (exit 0) in best-effort mode; pool and Cholesky
# faults have no fallback tier, so they exit 3 in either mode.  The
# quadrature site arms the Simpson fallback, so the run must succeed.
RGLEAK := dune exec --no-build bin/rgleak.exe --
fault-matrix: build
	@set -e; \
	for seed in 1 2; do \
	  for site in linear.f parallel cholesky; do \
	    case $$site in \
	    linear.f) \
	      cmd="estimate -n 200 --method linear --fault-spec $$site:1:$$seed"; \
	      want_strict=3; want_lax=0 ;; \
	    parallel) \
	      cmd="estimate -n 200 --method linear --fault-spec $$site:1:$$seed"; \
	      want_strict=3; want_lax=3 ;; \
	    cholesky) \
	      cmd="map -n 100 --fault-spec $$site:1:$$seed"; \
	      want_strict=3; want_lax=3 ;; \
	    esac; \
	    got=0; $(RGLEAK) $$cmd --strict >/dev/null 2>&1 || got=$$?; \
	    test $$got -eq $$want_strict || { \
	      echo "FAIL: $$site seed $$seed strict: exit $$got, want $$want_strict"; exit 1; }; \
	    got=0; $(RGLEAK) $$cmd >/dev/null 2>&1 || got=$$?; \
	    test $$got -eq $$want_lax || { \
	      echo "FAIL: $$site seed $$seed lax: exit $$got, want $$want_lax"; exit 1; }; \
	    echo "ok: $$site seed $$seed (strict $$want_strict, best-effort $$want_lax)"; \
	  done; \
	  got=0; $(RGLEAK) estimate -n 200 --method linear \
	    --fault-spec quadrature:1:$$seed --strict >/dev/null 2>&1 || got=$$?; \
	  test $$got -eq 0 || { \
	    echo "FAIL: quadrature seed $$seed: fallback should succeed, exit $$got"; exit 1; }; \
	  echo "ok: quadrature seed $$seed (fallback engages, exit 0)"; \
	done; \
	echo "fault matrix passed"

# The full paper-table validation sweep: exact/linear/integral tiers
# against a seeded MC reference at every design point, human-readable
# tables on stdout.  Bit-reproducible for a given --seed.
validate: build
	$(RGLEAK) validate --sweep default --seed 42

# The canonical arguments of the committed tail baseline
# (data/golden/tail_quick.json): a 192-gate scenario with the budget at
# roughly mean + 2.5 sigma, 500 importance-sampled replicas.
TAIL_QUICK := tail -n 192 --budget 0.85 --replicas 500 --seed 42

# The canonical arguments of the committed optimizer baseline
# (data/golden/optimize_quick.json): 400 gates starting all-LVT with a
# 30-unit slack budget; fully deterministic, so the golden compares at
# numeric-epsilon tolerance only.
OPTIMIZE_QUICK := optimize -n 400 --budget 30 --seed 7

# Regenerate the committed golden baselines after an intentional
# harness or estimator change; commit the resulting JSON.
golden-update: build
	$(RGLEAK) validate --sweep quick --seed 42 --json data/golden/validate_quick.json
	$(RGLEAK) validate --sweep default --seed 42 --json data/golden/validate_default.json
	$(RGLEAK) $(TAIL_QUICK) --json data/golden/tail_quick.json
	$(RGLEAK) $(OPTIMIZE_QUICK) --json data/golden/optimize_quick.json

# Both sweeps must reproduce their committed baselines (drift within MC
# sampling noise is tolerated, anything else fails), and a deliberately
# fault-poisoned run must be caught as breaking drift — proving the
# golden gate can actually fail.
golden-check: build
	$(RGLEAK) validate --sweep quick --seed 42 --golden data/golden/validate_quick.json
	$(RGLEAK) validate --sweep default --seed 42 --golden data/golden/validate_default.json
	$(RGLEAK) $(TAIL_QUICK) --golden data/golden/tail_quick.json >/dev/null
	$(RGLEAK) $(TAIL_QUICK) --jobs 4 --golden data/golden/tail_quick.json >/dev/null
	$(RGLEAK) $(OPTIMIZE_QUICK) --golden data/golden/optimize_quick.json >/dev/null
	$(RGLEAK) $(OPTIMIZE_QUICK) --jobs 4 --golden data/golden/optimize_quick.json >/dev/null
	@got=0; $(RGLEAK) validate --sweep quick --seed 42 \
	  --fault-spec linear.f:1:1 --golden data/golden/validate_quick.json \
	  >/tmp/rgleak_golden_neg.out 2>&1 || got=$$?; \
	test $$got -ne 0 || { \
	  echo "FAIL: faulted validate run passed the golden gate"; exit 1; }; \
	grep -q "BREAKING" /tmp/rgleak_golden_neg.out || { \
	  echo "FAIL: faulted drift not classified as breaking"; exit 1; }; \
	echo "ok: golden gate rejects a poisoned estimator (exit $$got, breaking drift)"

# Tail-risk demo: importance-sampled exceedance at the canonical quick
# scenario, report written next to the other telemetry artifacts.
tail-demo: build
	$(RGLEAK) $(TAIL_QUICK) --json tail_demo.json
	@echo "wrote tail_demo.json"

# Multi-Vt optimizer demo: greedy LVT downgrades at the canonical quick
# scenario, driven by the incremental delta estimator.
optimize-demo: build
	$(RGLEAK) $(OPTIMIZE_QUICK) --json optimize_demo.json
	@echo "wrote optimize_demo.json"

# Run the checked-in example manifest on a throwaway cache.
batch-demo: build
	$(RGLEAK) batch examples/batch_manifest.jsonl --cache-dir /tmp/rgleak_batch_demo_cache

# Cold run, warm run, byte-compare the reports, assert the warm run
# actually hit the cache (via --metrics-json counters), then aggregate
# the shared run ledger into fleet telemetry with `rgleak report` and
# assert the window's cache hit rate.  The warm run also writes a
# collapsed-stack profile for flamegraph.pl / speedscope.
batch-smoke: build
	@rm -rf /tmp/rgleak_batch_smoke; mkdir -p /tmp/rgleak_batch_smoke
	$(RGLEAK) batch examples/batch_manifest.jsonl \
	  --cache-dir /tmp/rgleak_batch_smoke/cache \
	  --out /tmp/rgleak_batch_smoke/cold.jsonl \
	  --metrics-json /tmp/rgleak_batch_smoke/cold-metrics.json \
	  --ledger /tmp/rgleak_batch_smoke/ledger.jsonl
	$(RGLEAK) batch examples/batch_manifest.jsonl \
	  --cache-dir /tmp/rgleak_batch_smoke/cache \
	  --out /tmp/rgleak_batch_smoke/warm.jsonl \
	  --metrics-json /tmp/rgleak_batch_smoke/warm-metrics.json \
	  --trace-folded /tmp/rgleak_batch_smoke/warm.folded \
	  --ledger /tmp/rgleak_batch_smoke/ledger.jsonl
	cmp /tmp/rgleak_batch_smoke/cold.jsonl /tmp/rgleak_batch_smoke/warm.jsonl
	@grep -E '"cache.hits": [1-9]' /tmp/rgleak_batch_smoke/warm-metrics.json \
	  || { echo "FAIL: warm run had no cache hits"; exit 1; }
	$(RGLEAK) report /tmp/rgleak_batch_smoke/ledger.jsonl \
	  --json /tmp/rgleak_batch_smoke/report.json
	@grep -E '"hit_rate": 0\.[1-9]' /tmp/rgleak_batch_smoke/report.json \
	  || { echo "FAIL: fleet report shows no cache hit rate"; exit 1; }
	@test -s /tmp/rgleak_batch_smoke/warm.folded \
	  || { echo "FAIL: collapsed-stack profile is empty"; exit 1; }
	@echo "batch smoke passed: identical reports, warm cache hits, fleet report aggregates the ledger"

# Service smoke gate: start the daemon on a throwaway socket, fire 8
# concurrent clients (the mixed-tier example manifest, duplicated so
# the shared cache sees repeats), byte-compare every response against
# the direct `rgleak batch` records, assert nonzero cache hits in the
# serve stats, prove shed-to-integral under a forced shed threshold
# and admission rejection under a zero queue cap, then check the
# SIGTERM drain exits 0, unlinks the socket and flushes the final
# ledger line.  The daemon and clients run the built binary directly:
# concurrent `dune exec` invocations would race on the build lock.
RGLEAK_BIN := _build/default/bin/rgleak.exe
serve-smoke: build
	@set -e; \
	D=/tmp/rgleak_serve_smoke; rm -rf $$D; mkdir -p $$D; \
	$(RGLEAK_BIN) batch examples/batch_manifest.jsonl --no-cache \
	  --out $$D/batch.jsonl 2>/dev/null; \
	tail -n +2 $$D/batch.jsonl > $$D/reference.jsonl; \
	$(RGLEAK_BIN) serve --socket $$D/serve.sock --cache-dir $$D/cache \
	  --ledger $$D/ledger.jsonl 2>$$D/serve.err & pid=$$!; \
	$(RGLEAK_BIN) client --socket $$D/serve.sock --ping --wait 10; \
	cpids=""; \
	for i in 1 2 3 4 5 6 7 8; do \
	  $(RGLEAK_BIN) client --socket $$D/serve.sock \
	    --manifest examples/batch_manifest.jsonl > $$D/resp$$i.jsonl & \
	  cpids="$$cpids $$!"; \
	done; \
	for p in $$cpids; do wait $$p; done; \
	for i in 1 2 3 4 5 6 7 8; do \
	  cmp $$D/resp$$i.jsonl $$D/reference.jsonl; \
	done; \
	$(RGLEAK_BIN) client --socket $$D/serve.sock --stats > $$D/stats.json; \
	grep -E '"hits": [1-9]' $$D/stats.json >/dev/null \
	  || { echo "FAIL: duplicate requests produced no cache hits"; exit 1; }; \
	kill -TERM $$pid; wait $$pid \
	  || { echo "FAIL: SIGTERM drain exited nonzero"; exit 1; }; \
	test ! -e $$D/serve.sock \
	  || { echo "FAIL: socket not unlinked after drain"; exit 1; }; \
	grep -q '"subcommand":"serve"' $$D/ledger.jsonl \
	  || { echo "FAIL: no final ledger line after drain"; exit 1; }; \
	printf '%s\n' '{"id": "ex", "n": 200, "mix": "INV_X1:1", "corr": "spherical:100", "tier": "exact"}' \
	  > $$D/exact.jsonl; \
	$(RGLEAK_BIN) serve --socket $$D/shed.sock --no-cache \
	  --shed-threshold 0 2>>$$D/serve.err & spid=$$!; \
	$(RGLEAK_BIN) client --socket $$D/shed.sock --ping --wait 10; \
	$(RGLEAK_BIN) client --socket $$D/shed.sock \
	  --manifest $$D/exact.jsonl > $$D/shed.out; \
	grep -q '"degraded": true' $$D/shed.out \
	  || { echo "FAIL: shed record not marked degraded"; exit 1; }; \
	$(RGLEAK_BIN) client --socket $$D/shed.sock --shutdown; wait $$spid; \
	$(RGLEAK_BIN) serve --socket $$D/cap.sock --no-cache \
	  --max-queue 0 2>>$$D/serve.err & qpid=$$!; \
	$(RGLEAK_BIN) client --socket $$D/cap.sock --ping --wait 10; \
	got=0; $(RGLEAK_BIN) client --socket $$D/cap.sock \
	  --manifest $$D/exact.jsonl >/dev/null 2>&1 || got=$$?; \
	test $$got -eq 5 \
	  || { echo "FAIL: full queue expected exit 5, got $$got"; exit 1; }; \
	kill -TERM $$qpid; wait $$qpid; \
	echo "serve smoke passed: 8 identical concurrent responses, cache hits, shed + overload paths, clean drain"

# Perf-regression gate: fresh timing pass vs the committed baseline.
# Warnings (1.5x+ on noisy runners) pass; schema breaks, missing
# entries, slowdowns beyond the per-tier fail threshold (3x default,
# 2x on the exact tier) and allocation metrics over budget fail.
bench-gate: build
	@cp BENCH_estimators.json /tmp/rgleak_bench_baseline.json
	$(MAKE) bench-json
	dune exec tools/bench_gate.exe -- \
	  --baseline /tmp/rgleak_bench_baseline.json --current BENCH_estimators.json

# Ratchet the committed baseline: run a fresh timing pass and adopt it
# as BENCH_estimators.json only when it is a clean >= 10% improvement
# (the gate still fails on regressions).  Commit the updated baseline
# when the ratchet reports adoption.
bench-ratchet: build
	@cp BENCH_estimators.json /tmp/rgleak_bench_baseline.json
	$(MAKE) bench-json
	@cp BENCH_estimators.json /tmp/rgleak_bench_current.json
	@cp /tmp/rgleak_bench_baseline.json BENCH_estimators.json
	dune exec tools/bench_gate.exe -- \
	  --baseline BENCH_estimators.json \
	  --current /tmp/rgleak_bench_current.json --ratchet

bench:
	dune exec bench/main.exe

bench-fast:
	dune exec bench/main.exe -- --fast

timing:
	dune exec bench/main.exe -- --run timing

# Fast timing pass; writes BENCH_estimators.json in the working
# directory.  The timing run rewrites the document from scratch, so
# ext-delta (which merges its delta-swap row into the same file) must
# run second — the bench gate fails on any missing baseline entry.
bench-json:
	dune exec bench/main.exe -- --run timing --fast
	dune exec bench/main.exe -- --run ext-delta --fast

# Full-size delta benchmark: asserts the >= 50x swap-vs-full-estimate
# speedup at n = 100k gates and refreshes the delta-swap bench entry.
bench-delta:
	dune exec bench/main.exe -- --run ext-delta

microbench:
	dune exec bench/main.exe -- --run microbench

# Telemetry demos: span/counter report on stderr, Chrome trace + metrics
# JSON files in the working directory (open trace.json in ui.perfetto.dev).
trace:
	dune exec bin/rgleak.exe -- estimate -n 2000 --trace --trace-json trace.json

metrics:
	dune exec bin/rgleak.exe -- estimate -n 2000 --metrics-json metrics.json
	@cat metrics.json

# Asserts disabled instrumentation (span, histogram and fault probes)
# costs < 1% on the exact hot loop, then re-checks the written
# rgleak-overhead/3 document through the gate's reader.
overhead:
	dune exec bench/main.exe -- --run overhead --fast
	dune exec tools/bench_gate.exe -- --overhead BENCH_overhead.json

# Fleet-telemetry demo: a few runs appending to a throwaway ledger,
# then the aggregated service-level report (QPS, per-tier latency
# quantiles, cache hit rate, exit classes).
report-demo: build
	@rm -f /tmp/rgleak_report_demo.jsonl
	$(RGLEAK) estimate -n 1000 --ledger /tmp/rgleak_report_demo.jsonl
	$(RGLEAK) estimate -n 2000 --ledger /tmp/rgleak_report_demo.jsonl
	$(RGLEAK) report /tmp/rgleak_report_demo.jsonl

# Collapsed stacks for flamegraph.pl or speedscope.
flamegraph: build
	$(RGLEAK) estimate -n 2000 --trace-folded rgleak.folded
	@echo "wrote rgleak.folded; render with: flamegraph.pl rgleak.folded > flame.svg"

examples:
	@for e in quickstart early_planning late_signoff signal_probability \
	          correlation_models yield_analysis hierarchical_floorplan \
	          temperature_study sleep_vector_search full_flow; do \
	  echo "== examples/$$e"; dune exec examples/$$e.exe; echo; done

clean:
	dune clean
