# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench examples clean doc bench-json microbench \
        trace metrics overhead check fault-matrix

all: check

build:
	dune build @all

test:
	dune runtest

test-verbose:
	dune runtest --force --no-buffer

# The default gate: build, run the full test suites, then exercise the
# fault-injection matrix end to end through the CLI.
check: build
	dune runtest
	$(MAKE) fault-matrix

# 3 sites x 2 seeds of deterministic fault injection, driven through
# the real binary.  Estimator-tier faults (linear.f) must exit 3 under
# --strict and recover (exit 0) in best-effort mode; pool and Cholesky
# faults have no fallback tier, so they exit 3 in either mode.  The
# quadrature site arms the Simpson fallback, so the run must succeed.
RGLEAK := dune exec --no-build bin/rgleak.exe --
fault-matrix: build
	@set -e; \
	for seed in 1 2; do \
	  for site in linear.f parallel cholesky; do \
	    case $$site in \
	    linear.f) \
	      cmd="estimate -n 200 --method linear --fault-spec $$site:1:$$seed"; \
	      want_strict=3; want_lax=0 ;; \
	    parallel) \
	      cmd="estimate -n 200 --method linear --fault-spec $$site:1:$$seed"; \
	      want_strict=3; want_lax=3 ;; \
	    cholesky) \
	      cmd="map -n 100 --fault-spec $$site:1:$$seed"; \
	      want_strict=3; want_lax=3 ;; \
	    esac; \
	    got=0; $(RGLEAK) $$cmd --strict >/dev/null 2>&1 || got=$$?; \
	    test $$got -eq $$want_strict || { \
	      echo "FAIL: $$site seed $$seed strict: exit $$got, want $$want_strict"; exit 1; }; \
	    got=0; $(RGLEAK) $$cmd >/dev/null 2>&1 || got=$$?; \
	    test $$got -eq $$want_lax || { \
	      echo "FAIL: $$site seed $$seed lax: exit $$got, want $$want_lax"; exit 1; }; \
	    echo "ok: $$site seed $$seed (strict $$want_strict, best-effort $$want_lax)"; \
	  done; \
	  got=0; $(RGLEAK) estimate -n 200 --method linear \
	    --fault-spec quadrature:1:$$seed --strict >/dev/null 2>&1 || got=$$?; \
	  test $$got -eq 0 || { \
	    echo "FAIL: quadrature seed $$seed: fallback should succeed, exit $$got"; exit 1; }; \
	  echo "ok: quadrature seed $$seed (fallback engages, exit 0)"; \
	done; \
	echo "fault matrix passed"

bench:
	dune exec bench/main.exe

bench-fast:
	dune exec bench/main.exe -- --fast

timing:
	dune exec bench/main.exe -- --run timing

# Fast timing pass; writes BENCH_estimators.json in the working directory.
bench-json:
	dune exec bench/main.exe -- --run timing --fast

microbench:
	dune exec bench/main.exe -- --run microbench

# Telemetry demos: span/counter report on stderr, Chrome trace + metrics
# JSON files in the working directory (open trace.json in ui.perfetto.dev).
trace:
	dune exec bin/rgleak.exe -- estimate -n 2000 --trace --trace-json trace.json

metrics:
	dune exec bin/rgleak.exe -- estimate -n 2000 --metrics-json metrics.json
	@cat metrics.json

# Asserts disabled instrumentation costs < 1% on the exact hot loop.
overhead:
	dune exec bench/main.exe -- --run overhead --fast

examples:
	@for e in quickstart early_planning late_signoff signal_probability \
	          correlation_models yield_analysis hierarchical_floorplan \
	          temperature_study sleep_vector_search full_flow; do \
	  echo "== examples/$$e"; dune exec examples/$$e.exe; echo; done

clean:
	dune clean
